#include "runtime/serve.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <thread>

#include "anneal/annealer.h"
#include "engine/place_scratch.h"
#include "engine/replica_session.h"
#include "io/benchmark_format.h"
#include "runtime/portfolio.h"
#include "runtime/tempering.h"
#include "runtime/thread_pool.h"
#include "util/stopwatch.h"

namespace als {

// --- private structs --------------------------------------------------------

struct ServeEngine::Slot {
  enum class State { Free, Pending, Running };
  State state = State::Free;
  std::uint64_t id = 0;
  Job job;
  CacheKey key;
  CancelToken cancel;
  Stopwatch clock;  ///< reset at submit; latency = submit-to-completion
  /// Deadline bookkeeping.  `deadlined` is atomic because the monitor
  /// thread sets it while the executing worker reads it lock-free (the
  /// worker also sets it itself for sweep deadlines).
  bool hasDeadline = false;  ///< wall deadline armed (under Impl::mutex)
  std::chrono::steady_clock::time_point deadlineAt{};
  std::atomic<bool> deadlined{false};
};

struct ServeEngine::Worker {
  std::thread thread;
  ThreadPool pool{1};     ///< tempering rounds run inline on the worker
  TemperingScratch bank;  ///< per-slice warm buffers, reused across jobs

  // Reused per-job state (capacity persists across jobs):
  EngineResult result;
  EngineBackend resultBackend = EngineBackend::FlatBStar;
  std::vector<std::unique_ptr<ReplicaSession>> sessions;
  std::vector<EngineResult> sliceResults;
};

struct ServeEngine::Impl {
  std::mutex mutex;
  std::condition_variable workCv;
  std::vector<std::unique_ptr<Slot>> slots;  ///< pending + running jobs
  std::vector<std::size_t> fifo;   ///< ring of pending slot indices
  std::size_t fifoHead = 0;
  std::size_t fifoCount = 0;
  std::uint64_t nextId = 1;
  ServeStats stats;
  bool stopping = false;
  std::vector<std::unique_ptr<Worker>> workers;
  /// Wall-deadline monitor: sleeps until the earliest armed deadline, fires
  /// by cancelling the slot.  Joined AFTER the workers so deadlines stay
  /// enforced through the shutdown drain.
  std::condition_variable deadlineCv;
  std::thread deadlineMonitor;
  bool monitorStop = false;
};

// --- lifecycle --------------------------------------------------------------

ServeEngine::ServeEngine(const ServeOptions& options)
    : options_(options),
      cache_(std::make_unique<ResultCache>(options.cacheDir,
                                           options.cacheCapacity)),
      impl_(std::make_unique<Impl>()) {
  options_.workers = std::max<std::size_t>(1, options_.workers);
  options_.queueCapacity = std::max<std::size_t>(1, options_.queueCapacity);
  options_.progressInterval =
      std::max<std::size_t>(1, options_.progressInterval);
  impl_->slots.reserve(options_.queueCapacity);
  for (std::size_t i = 0; i < options_.queueCapacity; ++i) {
    impl_->slots.push_back(std::make_unique<Slot>());
  }
  impl_->fifo.resize(options_.queueCapacity);
  impl_->workers.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    impl_->workers.push_back(std::make_unique<Worker>());
    Worker* worker = impl_->workers.back().get();
    worker->thread = std::thread([this, worker] { workerLoop(*worker); });
  }
  impl_->deadlineMonitor = std::thread([this] { deadlineLoop(); });
}

ServeEngine::~ServeEngine() { shutdown(); }

void ServeEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    if (impl_->stopping) return;
    impl_->stopping = true;
  }
  impl_->workCv.notify_all();
  for (auto& worker : impl_->workers) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->monitorStop = true;
  }
  impl_->deadlineCv.notify_all();
  if (impl_->deadlineMonitor.joinable()) impl_->deadlineMonitor.join();
}

// --- submission / control ---------------------------------------------------

ServeEngine::Submission ServeEngine::submit(Job job) {
  // The serve layer's reproducibility invariants, applied BEFORE the key is
  // computed (both knobs are excluded from the canonical options string):
  // no wall-clock stopping rule, parallelism across jobs rather than within.
  job.options.timeLimitSec = 0.0;
  job.options.numThreads = 1;
  std::string keyScratch;
  Submission out;
  out.key =
      makeCacheKey(job.circuitText, job.backend, job.options, keyScratch);

  std::lock_guard<std::mutex> lock(impl_->mutex);
  Slot* slot = nullptr;
  std::size_t index = 0;
  if (!impl_->stopping) {
    for (std::size_t i = 0; i < impl_->slots.size(); ++i) {
      if (impl_->slots[i]->state == Slot::State::Free) {
        slot = impl_->slots[i].get();
        index = i;
        break;
      }
    }
  }
  if (slot == nullptr) {
    ++impl_->stats.rejected;
    return out;  // accepted = false
  }
  slot->state = Slot::State::Pending;
  slot->id = impl_->nextId++;
  slot->job = std::move(job);
  slot->key = out.key;
  slot->cancel.reset();
  slot->clock.reset();
  slot->deadlined.store(false, std::memory_order_relaxed);
  slot->hasDeadline = slot->job.deadlineSeconds > 0.0;
  if (slot->hasDeadline) {
    // Measured from submit: a queued job burns its deadline waiting, which
    // is exactly what a client's latency budget means.
    slot->deadlineAt = std::chrono::steady_clock::now() +
                       std::chrono::duration_cast<
                           std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(
                               slot->job.deadlineSeconds));
  }
  impl_->fifo[(impl_->fifoHead + impl_->fifoCount) % impl_->fifo.size()] =
      index;
  ++impl_->fifoCount;
  ++impl_->stats.submitted;
  out.accepted = true;
  out.id = slot->id;
  impl_->workCv.notify_one();
  if (slot->hasDeadline) impl_->deadlineCv.notify_all();
  return out;
}

bool ServeEngine::cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (const std::unique_ptr<Slot>& slot : impl_->slots) {
    if (slot->state != Slot::State::Free && slot->id == id) {
      slot->cancel.cancel();
      return true;
    }
  }
  return false;
}

ServeStats ServeEngine::stats() const {
  ServeStats out;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out = impl_->stats;
  }
  // Sequential lock acquisition (never nested) — the cache has its own.
  const ResultCache::Stats cacheStats = cache_->stats();
  out.quarantined = cacheStats.quarantined;
  out.evicted = cacheStats.evicted;
  out.memoryOnly = cacheStats.memoryOnly;
  return out;
}

// --- deadline monitor -------------------------------------------------------

void ServeEngine::deadlineLoop() {
  std::unique_lock<std::mutex> lock(impl_->mutex);
  while (!impl_->monitorStop) {
    auto nextAt = std::chrono::steady_clock::time_point::max();
    const auto now = std::chrono::steady_clock::now();
    for (const std::unique_ptr<Slot>& slot : impl_->slots) {
      if (slot->state == Slot::State::Free || !slot->hasDeadline) continue;
      if (slot->deadlined.load(std::memory_order_relaxed)) continue;
      if (slot->deadlineAt <= now) {
        // Fire: the running session observes the token within one round;
        // a still-pending job deadlines during its first sweep check.
        slot->deadlined.store(true, std::memory_order_relaxed);
        slot->cancel.cancel();
        continue;
      }
      nextAt = std::min(nextAt, slot->deadlineAt);
    }
    if (nextAt == std::chrono::steady_clock::time_point::max()) {
      impl_->deadlineCv.wait(lock);
    } else {
      impl_->deadlineCv.wait_until(lock, nextAt);
    }
  }
}

// --- worker side ------------------------------------------------------------

void ServeEngine::workerLoop(Worker& worker) {
  for (;;) {
    Slot* slot = nullptr;
    {
      std::unique_lock<std::mutex> lock(impl_->mutex);
      impl_->workCv.wait(lock, [&] {
        return impl_->fifoCount > 0 || impl_->stopping;
      });
      if (impl_->fifoCount == 0) return;  // stopping and drained
      slot = impl_->slots[impl_->fifo[impl_->fifoHead]].get();
      impl_->fifoHead = (impl_->fifoHead + 1) % impl_->fifo.size();
      --impl_->fifoCount;
      slot->state = Slot::State::Running;
    }
    executeJob(worker, *slot);
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      // Release the callbacks now (they may close over connection state the
      // caller wants freed) and the slot last, so a resubmission can never
      // observe a Free slot with a stale job in it.
      slot->job.onProgress = nullptr;
      slot->job.onDone = nullptr;
      slot->state = Slot::State::Free;
    }
  }
}

/// The round loop of one restart job: per-slice sessions advanced
/// `progressInterval` sweeps at a time.  Reducing the finished sessions with
/// the shared portfolio reduction makes the outcome bit-identical to
/// `PortfolioRunner::run` on the same options (sessions run to completion
/// equal the one-shot engine call, slice for slice).
EngineResult ServeEngine::runSessionRounds(Worker& worker, Slot& slot,
                                           const Circuit& circuit,
                                           EngineBackend backend,
                                           const EngineOptions& options) {
  const ProgressFn& onProgress = slot.job.onProgress;
  const std::size_t interval = options_.progressInterval;
  const std::vector<RestartSlice> plan = makeRestartPlan(options);
  const std::size_t movesPerTemp =
      resolveMovesPerTemp(options.movesPerTemp, circuit.moduleCount());
  while (worker.bank.replicas.size() < plan.size()) {
    worker.bank.replicas.push_back(std::make_unique<PlaceScratch>());
  }
  worker.sessions.clear();
  worker.sessions.reserve(plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EngineOptions sliceOpt = sliceEngineOptions(options, plan[i], movesPerTemp);
    sliceOpt.scratch = worker.bank.replicas[i].get();
    worker.sessions.push_back(
        makeReplicaSession(backend, circuit, sliceOpt, 1.0));
  }

  std::size_t round = 0;
  std::size_t sweepsDone = 0;
  for (;;) {
    bool anyActive = false;
    for (auto& session : worker.sessions) {
      if (!session->finished()) sweepsDone += session->runSweeps(interval);
      anyActive = anyActive || !session->finished();
    }
    ++round;
    // Sweep-budget deadline, round-granular: once the job's TOTAL sweeps
    // cross the budget, cancel — the still-active sessions wind down during
    // the next round's sweep checks (same bound as a client CANCEL).
    if (slot.job.deadlineSweeps > 0 &&
        sweepsDone >= slot.job.deadlineSweeps &&
        !slot.deadlined.load(std::memory_order_relaxed)) {
      slot.deadlined.store(true, std::memory_order_relaxed);
      slot.cancel.cancel();
    }
    if (onProgress) {
      double best = std::numeric_limits<double>::infinity();
      for (auto& session : worker.sessions) {
        best = std::min(best, session->bestCost());
      }
      onProgress(round, sweepsDone, best);
    }
    if (!anyActive) break;
  }

  worker.sliceResults.clear();
  worker.sliceResults.reserve(worker.sessions.size());
  for (auto& session : worker.sessions) {
    worker.sliceResults.push_back(session->finish());
  }
  worker.sessions.clear();
  return reducePortfolioSlices(std::move(worker.sliceResults));
}

void ServeEngine::executeJob(Worker& worker, Slot& slot) {
  JobOutcome outcome;
  outcome.id = slot.id;
  outcome.key = slot.key;
  outcome.backend = slot.job.backend;

  const bool hit = cache_->fetch(slot.key, worker.resultBackend, worker.result);
  if (hit) {
    outcome.result = &worker.result;
    outcome.cacheHit = true;
    // A hit whose cancel token was tripped BY a deadline still completes as
    // a plain hit: the full answer is already known, serving it costs one
    // copy, and reporting DEADLINE for an instant result would be absurd.
    outcome.cancelled = slot.cancel.cancelled() &&
                        !slot.deadlined.load(std::memory_order_relaxed);
  } else {
    ParseResult parsed = parseBenchmark(slot.job.circuitText);
    if (!parsed.ok()) {
      outcome.error = std::move(parsed.error);
    } else {
      Stopwatch computeClock;
      EngineOptions options = slot.job.options;
      options.cancel = &slot.cancel;
      if (options.tempering) {
        TemperingRunner runner(&worker.pool);
        worker.result =
            runner.run(parsed.circuit, slot.job.backend, options, &worker.bank)
                .result;
      } else {
        worker.result = runSessionRounds(worker, slot, parsed.circuit,
                                         slot.job.backend, options);
      }
      worker.result.seconds = computeClock.seconds();
      outcome.result = &worker.result;
      // Deadline wins precedence: its cancellation is the engine's doing,
      // not the client's, and the wire reports it as its own status.
      outcome.deadlineExpired =
          slot.deadlined.load(std::memory_order_relaxed);
      outcome.cancelled =
          slot.cancel.cancelled() && !outcome.deadlineExpired;
      // Cancelled and deadlined results are best-so-far snapshots, not pure
      // functions of the key — never cache them (the cache-correctness
      // contract).
      if (!outcome.cancelled && !outcome.deadlineExpired) {
        cache_->store(slot.key, slot.job.backend, worker.result);
      }
    }
  }
  outcome.latencySeconds = slot.clock.seconds();

  {
    // Stats are committed BEFORE onDone so a client that saw its RESULT
    // observes them included in the next STATS reply.  The id is retired in
    // the same critical section: once a client can observe completion,
    // cancel(id) must report the job unknown rather than flag a slot that
    // is merely awaiting reuse.
    std::lock_guard<std::mutex> lock(impl_->mutex);
    slot.id = 0;
    ++impl_->stats.completed;
    if (outcome.cacheHit) {
      ++impl_->stats.cacheHits;
    } else if (outcome.error.empty()) {
      ++impl_->stats.cacheMisses;
    }
    if (outcome.deadlineExpired) {
      ++impl_->stats.deadlineExpired;
    } else if (outcome.cancelled) {
      ++impl_->stats.cancelled;
    }
  }
  if (slot.job.onDone) slot.job.onDone(outcome);
}

}  // namespace als
