// Content-addressed placement result cache with an on-disk persisted store —
// the "warm resubmissions cost ~0" half of the serve layer (runtime/serve.h).
//
// Keys are `CacheKey` (io/serve_protocol.h): (circuit bytes hash, canonical
// options hash, seed).  Because every run the serve layer executes is
// deterministic (sweep-budgeted, time cap zeroed, thread-invariant), a key
// IDENTIFIES its result — a fetched entry is bit-identical to what
// recomputing would produce, which tests/serve_test.cpp pins.  Cancelled or
// failed runs must never be stored (they are not pure functions of the key);
// the serve engine enforces that, this class just trusts its callers.
//
// Storage is two-level: an in-memory map (the warm path — a fetch into a
// caller-owned EngineResult reuses the caller's placement storage and
// performs no allocation at steady capacity, the property the allocation
// gate measures) over an optional directory of `<keyhex>.alsresult` text
// files (io/serve_protocol.h's ALSRESULT form).  Disk entries are written
// atomically (temp file + rename) so a killed daemon never leaves a torn
// entry, and are promoted into memory on first fetch — a restarted daemon
// serves its predecessor's results without recomputing.  `seconds` is not
// part of a result's identity and round-trips as 0.
//
// Thread safety: all public members are mutex-serialized; concurrent serve
// workers share one cache.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "engine/placement_engine.h"
#include "io/serve_protocol.h"

namespace als {

class ResultCache {
 public:
  /// `dir` empty = memory-only; otherwise the directory is created if
  /// missing and unreadable/corrupt entries are treated as misses (a cache
  /// never fails a job, it only declines to help).
  explicit ResultCache(std::string dir = {});

  /// Looks the key up (memory first, then disk, promoting a disk hit into
  /// memory).  On hit copies into `backend`/`result` — reusing `result`'s
  /// storage — and returns true; on miss returns false leaving the outputs
  /// untouched.
  bool fetch(const CacheKey& key, EngineBackend& backend, EngineResult& result);

  /// Inserts (overwriting an existing entry — values are key-determined, so
  /// overwrites are idempotent) and, when a directory is configured,
  /// persists atomically.  `result.seconds` is not stored.
  void store(const CacheKey& key, EngineBackend backend,
             const EngineResult& result);

  /// In-memory entry count (disk-only entries not yet fetched don't count).
  std::size_t size() const;

  /// Drops every entry, memory AND disk (the wire FLUSH command — how the
  /// replay harness forces recomputation of jobs it already ran).
  void clear();

 private:
  struct Entry {
    EngineBackend backend = EngineBackend::FlatBStar;
    EngineResult result;
  };

  bool fetchFromDisk(const CacheKey& key, Entry& out);
  void storeToDisk(const CacheKey& key, const Entry& entry);

  std::string dir_;  ///< empty = memory-only
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  std::string textScratch_;  ///< serialize/parse buffer (under mutex_)
};

}  // namespace als
