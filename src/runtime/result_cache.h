// Content-addressed placement result cache with an on-disk persisted store —
// the "warm resubmissions cost ~0" half of the serve layer (runtime/serve.h).
//
// Keys are `CacheKey` (io/serve_protocol.h): (circuit bytes hash, canonical
// options hash, seed).  Because every run the serve layer executes is
// deterministic (sweep-budgeted, time cap zeroed, thread-invariant), a key
// IDENTIFIES its result — a fetched entry is bit-identical to what
// recomputing would produce, which tests/serve_test.cpp pins.  Cancelled or
// failed runs must never be stored (they are not pure functions of the key);
// the serve engine enforces that, this class just trusts its callers.
//
// Storage is two-level: an in-memory map (the warm path — a fetch into a
// caller-owned EngineResult reuses the caller's placement storage and
// performs no allocation at steady capacity, the property the allocation
// gate measures) over an optional directory of `<keyhex>.alsresult` text
// files, each a `Key <keyhex>` line followed by io/serve_protocol.h's
// ALSRESULT form (whose Checksum trailer seals the payload).  Disk entries
// are written atomically (temp file + rename) and promoted into memory on
// first fetch — a restarted daemon serves its predecessor's results without
// recomputing.  `seconds` is not part of a result's identity and
// round-trips as 0.
//
// ## Failure model
//
// The cache is the stack's crash/corruption boundary, so it never trusts
// the disk:
//
//  - INTEGRITY.  A fetched file must carry the requested key in its `Key`
//    line (a foreign or stale file cannot be served for the wrong key) and
//    must pass the ALSRESULT checksum trailer.  Anything else — torn,
//    truncated, bit-flipped, mislabeled — is QUARANTINED: renamed to
//    `<keyhex>.corrupt` (kept for forensics, ignored forever after),
//    counted in `Stats::quarantined`, and reported as a miss so the serve
//    layer recomputes.  A corrupt entry is never served.
//  - SCRUB.  Construction walks the directory once: orphaned `.tmp` files
//    (a crash between write and rename) are removed, every `.alsresult`
//    entry is validated (corrupt ones quarantined on the spot), and the
//    survivors are indexed so the size cap covers them before any is
//    promoted.
//  - BOUNDED SIZE.  `maxEntries` (0 = unbounded) caps memory + disk
//    entries together.  Eviction is deterministic LRU: promote-on-fetch
//    order for in-memory entries, and not-yet-promoted disk survivors —
//    which have no recency — evict first, in descending key order.
//    Evicting an entry also removes its disk file, so the store directory
//    never exceeds the cap.
//  - DEGRADATION.  Disk write failures are counted; after three
//    CONSECUTIVE failures (or an unusable directory at construction) the
//    cache turns memory-only (`Stats::memoryOnly`) and stops touching the
//    disk for writes — a full or dead disk degrades throughput, never
//    correctness.  Reads still consult existing files.
//
// The disk path consults util/fault_injection.h (crash points
// `store-after-write` / `store-after-rename`), which is how the recovery
// tests drive every branch above deterministically.
//
// Thread safety: all public members are mutex-serialized; concurrent serve
// workers share one cache.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/placement_engine.h"
#include "io/serve_protocol.h"

namespace als {

class ResultCache {
 public:
  /// Failure-handling counters (see the header comment).  Monotonic over
  /// the cache's lifetime; `clear()` does not reset them.
  struct Stats {
    std::uint64_t quarantined = 0;   ///< corrupt entries moved to .corrupt
    std::uint64_t evicted = 0;       ///< entries dropped by the size cap
    std::uint64_t tmpRemoved = 0;    ///< orphaned .tmp files scrubbed
    std::uint64_t diskFailures = 0;  ///< failed entry writes/renames
    bool memoryOnly = false;         ///< disk writes disabled (degraded)
  };

  /// `dir` empty = memory-only; otherwise the directory is created if
  /// missing and scrubbed (see the header comment).  An unusable directory
  /// degrades to memory-only.  `maxEntries` 0 = unbounded.
  explicit ResultCache(std::string dir = {}, std::size_t maxEntries = 0);

  /// Looks the key up (memory first, then disk, promoting a disk hit into
  /// memory and marking it most-recently-used).  On hit copies into
  /// `backend`/`result` — reusing `result`'s storage — and returns true; on
  /// miss returns false leaving the outputs untouched.  A corrupt disk
  /// entry is quarantined and reported as a miss.
  bool fetch(const CacheKey& key, EngineBackend& backend, EngineResult& result);

  /// Inserts (overwriting an existing entry — values are key-determined, so
  /// overwrites are idempotent) and, when a directory is configured and not
  /// degraded, persists atomically.  `result.seconds` is not stored.  May
  /// evict to honor the size cap.
  void store(const CacheKey& key, EngineBackend backend,
             const EngineResult& result);

  /// In-memory entry count (disk-only entries not yet fetched don't count).
  std::size_t size() const;

  /// Entries the cap accounts for: in-memory + valid not-yet-promoted disk
  /// entries found by the startup scrub.
  std::size_t totalEntries() const;

  /// Drops every entry, memory AND disk (the wire FLUSH command — how the
  /// replay harness forces recomputation of jobs it already ran).
  /// Quarantined `.corrupt` files are left in place.
  void clear();

  /// Snapshot of the failure-handling counters.
  Stats stats() const;

 private:
  struct Entry {
    EngineBackend backend = EngineBackend::FlatBStar;
    EngineResult result;
    std::list<CacheKey>::iterator lruIt;  ///< position in lru_
  };

  enum class DiskRead { Miss, Corrupt, Ok };

  void scrub();
  DiskRead readDiskEntry(const CacheKey& key, Entry& out);
  void storeToDisk(const CacheKey& key, const Entry& entry);
  void enforceCap();
  void eraseDiskOnly(const CacheKey& key);
  void quarantineFile(const std::string& path);
  std::string entryPath(const CacheKey& key) const;
  void noteDiskFailure();

  std::string dir_;  ///< empty = memory-only
  std::size_t maxEntries_ = 0;
  mutable std::mutex mutex_;
  std::unordered_map<CacheKey, Entry, CacheKeyHash> map_;
  /// Recency order, front = most recent.  Promotions splice (no allocation
  /// on the warm hit path); eviction pops the back.
  std::list<CacheKey> lru_;
  /// Valid unpromoted disk entries (previous lives), sorted ascending by
  /// (circuit, options, seed).  No recency exists for them, so the cap
  /// evicts from the back — deterministic on every platform.
  std::vector<CacheKey> diskOnly_;
  Stats stats_;
  int consecutiveDiskFailures_ = 0;
  std::string textScratch_;  ///< serialize/parse buffer (under mutex_)
};

}  // namespace als
