// Deterministic fork-join thread pool — the bottom of the runtime layer
// (thread pool -> portfolio -> engine -> backends).
//
// The pool is intentionally work-stealing-free: `parallelFor(count, fn)`
// runs `fn(0) .. fn(count-1)` where each index is claimed exactly once from
// a single shared counter.  Which *thread* runs which index varies run to
// run, but every index's work is required to be a pure function of the
// index (the portfolio layer guarantees this by giving each restart its own
// seed, budget and result slot), so the *values* produced are independent
// of scheduling, thread count, and machine load.  That is the property the
// `numThreads = 1` vs `numThreads = N` bit-identity tests lean on.
//
// Workers are persistent: construction spawns `threadCount() - 1` workers
// (the caller of parallelFor is the remaining participant, which makes a
// 1-thread pool run fully inline — no spawn, no synchronization).  One
// fork-join runs at a time; concurrent parallelFor calls serialize.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace als {

class ThreadPool {
 public:
  /// `numThreads` counts the calling thread: a pool of size N spawns N-1
  /// workers.  0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t numThreads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that participate in a parallelFor (workers + caller).
  std::size_t threadCount() const { return workers_.size() + 1; }

  /// The `numThreads` resolution rule (0 = hardware concurrency, at least
  /// 1) — exported so drivers and benches report the same count the pool
  /// will actually use.
  static std::size_t resolveThreadCount(std::size_t numThreads);

  /// Runs `fn(i)` for every i in [0, count), blocking until all complete.
  /// `fn` must not touch shared mutable state except through its own index.
  /// If any invocation throws, the exception thrown by the smallest index
  /// is rethrown on the calling thread after the join.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

  /// Slotted variant: `fn(i, slot)` additionally receives the identity of
  /// the participating thread — 0 for the caller, 1..threadCount()-1 for
  /// the workers.  Within one fork-join a slot runs its indices strictly
  /// sequentially, so slot-indexed resources (e.g. the portfolio layer's
  /// per-worker decode scratches) need no further synchronization.  Which
  /// *indices* land on which slot is scheduling-dependent; only state whose
  /// contents cannot influence results may be keyed by slot.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void workerLoop(std::size_t slot);
  void runJob(std::size_t slot);  // claim indices until the job is exhausted

  std::vector<std::thread> workers_;

  std::mutex mutex_;                 // guards all fields below
  std::condition_variable wake_;     // workers: new job or shutdown
  std::condition_variable done_;     // caller: all indices finished
  std::mutex forkJoinMutex_;         // serializes concurrent parallelFor
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t jobCount_ = 0;         // indices in the current job
  std::size_t nextIndex_ = 0;        // next unclaimed index
  std::size_t pendingIndices_ = 0;   // claimed-or-unclaimed, not yet finished
  std::uint64_t generation_ = 0;     // bumps once per job
  std::exception_ptr firstError_;    // error of the smallest failing index
  std::size_t firstErrorIndex_ = 0;
  bool shutdown_ = false;
};

}  // namespace als
