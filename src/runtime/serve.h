// ServeEngine — the long-running placement service behind tools/als_serve,
// socket-free so tests and in-process embedders drive it directly.
//
// Jobs (raw ALSBENCH text + backend + EngineOptions) are admission-
// controlled into a bounded slot table: `submit` either accepts — returning
// the job id and its content-addressed `CacheKey` — or rejects immediately
// when all slots are taken (the backpressure signal a loaded daemon gives
// its clients).  Accepted jobs are executed FIFO by a fixed crew of worker
// threads; each worker owns a warm `TemperingScratch` bank and a one-thread
// `ThreadPool`, so parallelism comes from concurrent JOBS, not from threads
// within a job — and because every run is deterministic and thread-count
// invariant, N concurrent clients observe bit-identical per-job placements
// to a lone client (pinned by tests/serve_test.cpp and the als_replay
// harness).
//
// Execution of one job:
//   1. `ResultCache::fetch` on the job's key — a hit completes the job
//      without even parsing the circuit (the warm path the allocation gate
//      measures; `makeCacheKey` + fetch reuse caller buffers throughout).
//   2. On a miss the circuit is parsed; parse failures complete the job
//      with `JobOutcome::error`.
//   3. Restart jobs run as per-slice `ReplicaSession`s advanced in rounds
//      of `progressInterval` sweeps — `onProgress` fires once per round —
//      and reduce with the shared portfolio reduction, which makes the
//      outcome bit-identical to `PortfolioRunner::run` on the same options
//      (the session run-to-completion contract, engine/replica_session.h).
//      Tempering jobs route through `TemperingRunner` with the worker's
//      scratch bank (no per-round progress; the runner is monolithic).
//   4. A successful, uncancelled result is stored in the cache; cancelled
//      and failed runs never are (they are not pure functions of the key).
//
// Cancellation (`cancel(id)`) sets the slot's CancelToken.  Running jobs
// observe it at sweep granularity (anneal/annealer.h) — every live session
// winds down within one round, so the acknowledgment latency is bounded by
// one progress round.  Pending jobs run trivially (the driver cancels
// during its first sweep check) and complete as cancelled.  Either way the
// job still delivers its `onDone`, flagged `cancelled`, and the worker's
// scratch bank stays warm and reusable — the next job on that worker is
// bit-identical to a fresh process.
//
// Deadlines ride the same CancelToken seam.  A job may carry a wall-clock
// deadline (`Job::deadlineSeconds`, measured from SUBMIT — queue wait
// counts, which is what a client's latency budget means) enforced by a
// monitor thread, and/or a sweep budget (`Job::deadlineSweeps`, total
// sweeps across restart slices) checked at round granularity.  An expired
// deadline cancels the run and flags the outcome `deadlineExpired` —
// precedence over plain `cancelled` — and, like a cancellation, the
// best-so-far result is delivered but NEVER cached.  A cache hit always
// completes as a hit: if the answer is already known, no deadline can make
// serving it wrong.  Sweep deadlines apply to restart jobs only (tempering
// runs are monolithic); wall deadlines cover both.
//
// The serve layer forces `timeLimitSec = 0` and `numThreads = 1` on every
// job (reproducibility and the parallelism-across-jobs scheduling model;
// both knobs are excluded from the cache key for exactly this reason).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/placement_engine.h"
#include "io/serve_protocol.h"
#include "runtime/result_cache.h"

namespace als {

struct ServeOptions {
  std::size_t workers = 1;        ///< job-executing threads (min 1)
  /// Total job slots (pending + running); `submit` rejects when exhausted.
  std::size_t queueCapacity = 16;
  /// Sweeps each restart slice advances between progress events (min 1).
  std::size_t progressInterval = 32;
  std::string cacheDir;  ///< persisted result store ("" = memory-only)
  /// Result cache size cap, memory + disk entries together (0 = unbounded);
  /// eviction is deterministic LRU (runtime/result_cache.h).
  std::size_t cacheCapacity = 0;
};

struct ServeStats {
  std::uint64_t submitted = 0;   ///< jobs accepted by submit
  std::uint64_t completed = 0;   ///< jobs whose onDone ran (any outcome)
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;  ///< computed jobs (includes cancelled)
  std::uint64_t cancelled = 0;
  std::uint64_t rejected = 0;    ///< admission-control rejections
  std::uint64_t deadlineExpired = 0;  ///< jobs cut off by a deadline
  // Mirrored from ResultCache::Stats by stats() — the daemon's STATS reply
  // is the operator's one window into the store's health:
  std::uint64_t quarantined = 0;  ///< corrupt store entries quarantined
  std::uint64_t evicted = 0;      ///< entries dropped by the size cap
  bool memoryOnly = false;        ///< store degraded, disk writes disabled
};

class ServeEngine {
 public:
  /// Completion report, valid only during the `onDone` call (the result
  /// points into worker-owned storage).
  struct JobOutcome {
    std::uint64_t id = 0;
    CacheKey key;
    EngineBackend backend = EngineBackend::FlatBStar;
    const EngineResult* result = nullptr;  ///< null iff `error` nonempty
    bool cacheHit = false;
    bool cancelled = false;
    bool deadlineExpired = false;  ///< deadline cut the run short
    std::string error;      ///< circuit parse / job failure, empty = ok
    double latencySeconds = 0.0;  ///< submit-to-completion wall clock
  };

  using ProgressFn = std::function<void(std::size_t round,
                                        std::size_t sweepsDone,
                                        double bestCost)>;
  using DoneFn = std::function<void(const JobOutcome&)>;

  struct Job {
    std::string circuitText;  ///< raw ALSBENCH bytes (hashed as-is)
    EngineBackend backend = EngineBackend::FlatBStar;
    EngineOptions options;
    /// Wall-clock deadline in seconds from submit (0 = none).  Not part of
    /// the cache key — a deadline changes whether a run finishes, never
    /// what a finished run produces.
    double deadlineSeconds = 0.0;
    /// Total-sweep budget across restart slices (0 = none); round-granular.
    std::size_t deadlineSweeps = 0;
    ProgressFn onProgress;  ///< per round; may be empty
    DoneFn onDone;          ///< exactly once per accepted job; may be empty
  };

  struct Submission {
    bool accepted = false;
    std::uint64_t id = 0;  ///< valid when accepted
    CacheKey key;          ///< computed either way (REJECTED replies carry it)
  };

  explicit ServeEngine(const ServeOptions& options);
  ~ServeEngine();  ///< shutdown(): drains pending jobs, joins workers

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Admission control + enqueue.  Callbacks run on worker threads; they
  /// must not call back into submit/shutdown.
  Submission submit(Job job);

  /// Requests cancellation of a pending or running job; false when the id
  /// is unknown or already completed.  The job still reports through
  /// `onDone` (flagged cancelled) within one progress round.
  bool cancel(std::uint64_t id);

  /// Stops accepting work, drains every already-accepted job, joins the
  /// workers.  Idempotent.
  void shutdown();

  ServeStats stats() const;
  ResultCache& cache() { return *cache_; }

 private:
  struct Worker;
  struct Slot;

  void workerLoop(Worker& worker);
  void executeJob(Worker& worker, Slot& slot);
  void deadlineLoop();
  EngineResult runSessionRounds(Worker& worker, Slot& slot,
                                const Circuit& circuit,
                                EngineBackend backend,
                                const EngineOptions& options);

  ServeOptions options_;
  std::unique_ptr<ResultCache> cache_;
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace als
