// Parallel restart portfolio over the PlacementEngine seam — the middle of
// the runtime layer (thread pool -> portfolio -> engine -> backends).
//
// A portfolio run splits one deterministic sweep budget into
// `options.numRestarts` slices, each annealing from its own seed of the
// shared restart schedule (anneal/annealer.h), fans the slices across a
// deterministic ThreadPool, and reduces to the best slice with a total-order
// tie-break on (cost, seed, backend).  Because every slice is a pure
// function of its (seed, budget) pair and the reduction is performed in
// schedule order over an index-addressed result array, the outcome is
// bit-identical for `numThreads = 1` and `numThreads = N` — the property
// tests/runtime_test.cpp asserts per backend.
//
// `movesPerTemp == 0` auto-scaling is resolved ONCE per run (from the
// circuit's module count, the hint every registered backend uses) and the
// resolved value is stamped into each slice, so split-budget restarts anneal
// on exactly the schedule the equivalent sequential run would have used.
//
// `timeLimitSec`, when positive, caps each slice's wall clock individually;
// as everywhere else in the library, results under an active time cap are
// not reproducible.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/placement_engine.h"
#include "runtime/thread_pool.h"

namespace als {

/// One restart's slice of a portfolio plan.
struct RestartSlice {
  std::size_t index = 0;      ///< position in the restart schedule
  std::uint64_t seed = 0;     ///< portfolioSeedAt(options.seed, index)
  std::size_t maxSweeps = 0;  ///< splitSweepBudget slice (0 = uncapped)
};

/// The deterministic plan a portfolio executes: `options.numRestarts`
/// slices (at least one), seeds from the portfolio seed schedule, sweep
/// budgets summing exactly to `options.maxSweeps`.  When `maxSweeps > 0`
/// the slice count is capped at the total budget — a slice budget of zero
/// would mean "uncapped" everywhere in the library, not "no work".
std::vector<RestartSlice> makeRestartPlan(const EngineOptions& options);

/// Options of one slice: own seed and budget, shared resolved movesPerTemp,
/// multi-start knobs neutralized (a slice is exactly one engine run), the
/// caller's scratch dropped (runners hand each slice the scratch of the
/// worker executing it).  Every field the caller set — objective weights,
/// the cancel token — flows through unchanged.  Shared by the portfolio,
/// tempering and serve runners so their per-slice schedules cannot drift.
EngineOptions sliceEngineOptions(const EngineOptions& base,
                                 const RestartSlice& slice,
                                 std::size_t resolvedMovesPerTemp);

/// Collapses one portfolio's slices (in schedule order) into the aggregate
/// result: (cost, seed) winner's placement, summed moves/sweeps/seconds,
/// `bestRestart` = winner's schedule index.  Scanning in schedule order over
/// an index-addressed array keeps the choice independent of which thread
/// finished first — the reduction behind the portfolio, tempering and serve
/// runners alike (callers overwrite `seconds` with their wall clock).
EngineResult reducePortfolioSlices(std::vector<EngineResult>&& slices);

/// Fans seed-split restarts (and whole-backend races) over a thread pool.
/// Const and stateless per call: one runner may serve concurrent callers
/// when constructed over distinct pools.
class PortfolioRunner {
 public:
  /// Pool-per-run mode: each run sizes a pool from `options.numThreads`.
  PortfolioRunner() = default;

  /// Shared-pool mode: all runs use `pool` (caller keeps ownership and the
  /// pool must outlive the runner); `options.numThreads` is then ignored.
  explicit PortfolioRunner(ThreadPool* pool) : pool_(pool) {}

  /// Runs the restart portfolio of one backend; `result.placement` is the
  /// winning slice's placement, moves/sweeps aggregate over all slices,
  /// `seconds` is the portfolio's wall clock.
  EngineResult run(const Circuit& circuit, EngineBackend backend,
                   const EngineOptions& options) const;

  struct RaceOutcome {
    EngineResult result;  ///< winning backend's full portfolio result
    EngineBackend backend = EngineBackend::FlatBStar;
  };

  /// Races full restart portfolios of several backends over one pool; the
  /// flattened backend x restart grid saturates the pool.  Winner by
  /// (cost, seed, position in `backends`).  Throws std::invalid_argument
  /// when `backends` is empty.
  RaceOutcome race(const Circuit& circuit,
                   std::span<const EngineBackend> backends,
                   const EngineOptions& options) const;

 private:
  ThreadPool* pool_ = nullptr;
};

/// Places many circuits with one backend/options over one pool.  The
/// flattened circuit x restart grid keeps all threads busy even when
/// `numRestarts` is small.  Results are index-aligned with `circuits`;
/// each result's `seconds` is the summed annealing time of that circuit's
/// slices (the batch shares one wall clock).
class BatchPlacer {
 public:
  BatchPlacer() = default;
  explicit BatchPlacer(ThreadPool* pool) : pool_(pool) {}

  std::vector<EngineResult> placeAll(std::span<const Circuit> circuits,
                                     EngineBackend backend,
                                     const EngineOptions& options) const;

 private:
  ThreadPool* pool_ = nullptr;
};

}  // namespace als
