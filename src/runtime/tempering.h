// Deterministic parallel tempering over the replica-session seam — the
// cooperative-search top of the runtime layer (thread pool -> tempering ->
// replica sessions -> backends).
//
// A tempering run takes the SAME deterministic plan a restart portfolio
// takes (`makeRestartPlan`: numRestarts seed-scheduled budget slices) but
// runs the slices as COUPLED replicas: replica i anneals with its t0
// multiplied by ladderRatio^i (computed by repeated multiplication, never
// pow — identical rounding everywhere), all replicas advance in fixed
// rounds of `exchangeInterval` sweeps, and at each round barrier adjacent
// ladder neighbours may swap their current states with the standard
// parallel-tempering Metropolis rule
//
//     P(swap i,j) = min(1, exp((1/Ti - 1/Tj) (Ei - Ej))).
//
// Determinism: the exchange decisions are a pure function of
// (round, replica seeds, costs, temperatures) — `planExchanges` below —
// with all randomness drawn from an RNG seeded by hashing (round, seeds).
// Replica trajectories are pure functions of their (seed, budget) slice
// plus the swaps applied to them, rounds are fork-join barriers on a
// deterministic ThreadPool, and the reduction scans an index-addressed
// array in schedule order.  The outcome is therefore bit-identical for
// numThreads = 1 and numThreads = N — the property the Tempering suites in
// tests/runtime_test.cpp pin per backend.
//
// Degeneration: with `exchangeInterval = 0` AND `ladderRatio = 1.0` a
// tempering run IS the independent-restart portfolio, bit for bit (same
// plan, tempScale 1.0 multiplies exactly, no barriers touch the states).
// Both knobs are needed: a ratio-1.0 ladder with exchanges enabled has
// 1/Ti - 1/Tj = 0, so P = 1 and every considered pair swaps — trajectories
// change even though the ladder is flat.
//
// Cross-backend seeding (`race` with options.crossSeed): at each round
// barrier the globally best replica donates its best placement, and every
// OTHER backend's ladder re-seeds its worst still-running replica from it
// through the from_placement converters (seqpair/from_placement.h,
// bstar/from_placement.h).  Backends whose encodings cannot adopt a flat
// placement (slicing, hbstar) keep their state — reseedFromPlacement
// returns false and nothing changes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "engine/replica_session.h"
#include "runtime/thread_pool.h"

namespace als {

struct PlaceScratch;

/// Persistent per-replica scratch bank.  A tempering run's replicas are
/// long-lived sessions, so unlike the portfolio's per-worker scratches the
/// bank is keyed by REPLICA INDEX — each entry is touched by exactly one
/// session per run, at any thread count.  The scratch-reuse contract of
/// engine/place_scratch.h applies: contents never influence results, only
/// whether the round loop allocates, and at most one run may use a bank at
/// a time.  Passing the same bank to consecutive runs keeps every buffer
/// at its high-water capacity — the setup the steady-state allocation gate
/// (tests/alloc_gate_test.cpp) measures under.
struct TemperingScratch {
  TemperingScratch();
  ~TemperingScratch();
  std::vector<std::unique_ptr<PlaceScratch>> replicas;
};

/// Per-replica accounting of one tempering run.
struct TemperingReplica {
  std::uint64_t seed = 0;    ///< slice seed (portfolio schedule)
  double tempScale = 1.0;    ///< ladder rung: t0 multiplier
  double cost = 0.0;         ///< final best cost of this replica
  std::size_t sweeps = 0;    ///< SA temperature steps executed
  std::size_t movesTried = 0;
  std::size_t exchanges = 0; ///< accepted swaps this replica took part in
  std::size_t reseeds = 0;   ///< cross-backend seeds adopted (race only)
};

/// Aggregate outcome; `result` follows the portfolio conventions
/// (winning replica's placement, summed moves/sweeps, wall-clock seconds,
/// restartsRun = replica count, bestRestart = winning schedule index).
struct TemperingOutcome {
  EngineResult result;
  EngineBackend backend = EngineBackend::FlatBStar;
  std::vector<TemperingReplica> replicas;
  std::size_t rounds = 0;             ///< round barriers executed
  std::size_t exchangesAccepted = 0;  ///< total accepted swaps
  std::size_t reseeds = 0;            ///< total cross-backend seeds adopted
};

/// Hash of (round, replica seeds) — the seed of round `round`'s exchange
/// RNG.  Pure and order-sensitive in `seeds`; no costs enter, so the
/// schedule's random draws are independent of the annealing trajectories
/// (only the accept thresholds depend on costs).
std::uint64_t exchangeScheduleSeed(std::uint64_t round,
                                   std::span<const std::uint64_t> seeds);

/// Plans round `round`'s exchanges: considers adjacent pairs (i, i+1) with
/// i of parity `round % 2` (alternating even/odd pairing — the standard
/// deterministic-sweep tempering scheme), draws one uniform per considered
/// pair unconditionally (the draw stream never depends on costs or
/// liveness), and accepts with the tempering Metropolis rule.  Pairs with
/// a finished replica (`active[i] == 0`) or a non-positive temperature
/// never swap.  `salt` decorrelates parallel ladders sharing seeds (the
/// race salts by backend position).  Appends the lower index of each
/// accepted pair to `out` (cleared first), in increasing order.
///
/// Pure function of its arguments — the property
/// tests/runtime_test.cpp pins.
void planExchanges(std::uint64_t round, std::uint64_t salt,
                   std::span<const std::uint64_t> seeds,
                   std::span<const double> costs,
                   std::span<const double> temps,
                   std::span<const std::uint8_t> active,
                   std::vector<std::size_t>& out);

/// Runs coupled-replica tempering over a deterministic thread pool.  Const
/// and stateless per call, like PortfolioRunner.
class TemperingRunner {
 public:
  /// Pool-per-run mode: each run sizes a pool from `options.numThreads`.
  TemperingRunner() = default;
  /// Shared-pool mode (caller keeps ownership; numThreads is ignored).
  explicit TemperingRunner(ThreadPool* pool) : pool_(pool) {}

  /// One backend, `options.numRestarts` replicas on one ladder.  An
  /// optional TemperingScratch gives replica i persistent warm buffers
  /// across runs (grown to the replica count on the calling thread);
  /// `options.scratch` is ignored — one PlaceScratch cannot serve multiple
  /// concurrent replicas.
  TemperingOutcome run(const Circuit& circuit, EngineBackend backend,
                       const EngineOptions& options,
                       TemperingScratch* scratch = nullptr) const;

  /// Races one ladder per backend (backend-major replica grid, like
  /// PortfolioRunner::race), with cross-backend seeding between ladders
  /// when `options.crossSeed`.  Winner by (cost, seed, position in
  /// `backends`).  Throws std::invalid_argument when `backends` is empty.
  TemperingOutcome race(const Circuit& circuit,
                        std::span<const EngineBackend> backends,
                        const EngineOptions& options,
                        TemperingScratch* scratch = nullptr) const;

 private:
  ThreadPool* pool_ = nullptr;
};

}  // namespace als
