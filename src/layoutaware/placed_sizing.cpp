#include "layoutaware/placed_sizing.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "anneal/annealer.h"
#include "layoutaware/mosfet.h"
#include "runtime/portfolio.h"
#include "shapefn/shape_function.h"
#include "util/stopwatch.h"

namespace als {

namespace {

Coord toDbu(double meters) {
  return static_cast<Coord>(std::llround(meters * 1e9));
}

/// Device-cell footprint in DBU, floored at 1 so degenerate design vectors
/// still validate.
std::pair<Coord, Coord> cellDims(const Technology& tech, const MosSpec& spec) {
  Coord w = std::max<Coord>(1, toDbu(mosCellWidth(tech, spec)));
  Coord h = std::max<Coord>(1, toDbu(mosCellHeight(tech, spec)));
  return {w, h};
}

}  // namespace

Circuit makeMillerPlacementCircuit(const Technology& tech,
                                   const MillerDesign& design) {
  Circuit c("miller_sized");
  auto [w1, h1] = cellDims(tech, design.inputPair());
  auto [wn, hn] = cellDims(tech, design.mirror());
  auto [wp, hp] = cellDims(tech, design.biasLeg());
  auto [w8, h8] = cellDims(tech, design.driver());

  ModuleId p1 = c.addModule("P1", w1, h1, false);
  ModuleId p2 = c.addModule("P2", w1, h1, false);
  ModuleId p5 = c.addModule("P5", wp, hp, false);
  ModuleId p6 = c.addModule("P6", wp, hp, false);
  ModuleId p7 = c.addModule("P7", wp, hp, false);
  ModuleId n3 = c.addModule("N3", wn, hn, false);
  ModuleId n4 = c.addModule("N4", wn, hn, false);
  ModuleId n8 = c.addModule("N8", w8, h8);

  // The Miller capacitor is the one genuinely soft block of the design: a
  // square footprint at the technology's capacitance density plus a
  // discretized aspect curve for the shape-selection move.
  double capSideM = std::sqrt(std::max(design.cc, 1e-15) / tech.capDensity);
  Coord capSide = std::max<Coord>(1, toDbu(capSideM));
  ModuleId cap = c.addModule("C", capSide, capSide, false);
  {
    Module& mod = c.module(cap);
    double area = static_cast<double>(capSide) * static_cast<double>(capSide);
    std::vector<ModuleShape> curve = discretizeSoftShape(area, 0.5, 2.0, 6);
    ModuleShape footprint{capSide, capSide};
    std::erase(curve, footprint);
    if (!curve.empty()) {
      mod.shapes.push_back(footprint);
      for (const ModuleShape& s : curve) mod.shapes.push_back(s);
    }
  }

  // Power annotations: the first-stage tail current dissipates in the tail
  // source P5, the output-stage current splits across its P7/N8 branch.
  c.module(p5).powerW = design.ib * tech.vdd;
  c.module(p7).powerW = 0.5 * design.i2 * tech.vdd;
  c.module(n8).powerW = 0.5 * design.i2 * tech.vdd;

  SymmetryGroup dp;
  dp.name = "DP";
  dp.pairs = {{p1, p2}};
  std::size_t gDp = c.addSymmetryGroup(std::move(dp));

  SymmetryGroup cm1;
  cm1.name = "CM1";
  cm1.pairs = {{n3, n4}};
  std::size_t gCm1 = c.addSymmetryGroup(std::move(cm1));

  SymmetryGroup cm2;
  cm2.name = "CM2";
  cm2.pairs = {{p5, p7}};
  cm2.selfs = {p6};
  std::size_t gCm2 = c.addSymmetryGroup(std::move(cm2));

  c.addNet("inp", {p1});
  c.addNet("inn", {p2});
  c.addNet("tail", {p1, p2, p5});
  c.addNet("mirror", {n3, n4, p1, p2});
  c.addNet("out1", {n4, cap, n8});
  c.addNet("out", {n8, cap, p7});
  c.addNet("bias", {p5, p6, p7});

  HierTree& h = c.hierarchy();
  HierNodeId lp1 = h.addLeaf("P1", p1), lp2 = h.addLeaf("P2", p2);
  HierNodeId lp5 = h.addLeaf("P5", p5), lp6 = h.addLeaf("P6", p6);
  HierNodeId lp7 = h.addLeaf("P7", p7);
  HierNodeId ln3 = h.addLeaf("N3", n3), ln4 = h.addLeaf("N4", n4);
  HierNodeId ln8 = h.addLeaf("N8", n8), lc = h.addLeaf("C", cap);

  HierNodeId ndp = h.addGroup("DP", {lp1, lp2}, GroupConstraint::Symmetry);
  h.node(ndp).symGroup = gDp;
  HierNodeId ncm1 = h.addGroup("CM1", {ln3, ln4}, GroupConstraint::Symmetry);
  h.node(ncm1).symGroup = gCm1;
  HierNodeId ncm2 = h.addGroup("CM2", {lp5, lp6, lp7}, GroupConstraint::Symmetry);
  h.node(ncm2).symGroup = gCm2;
  HierNodeId core = h.addGroup("CORE", {ndp, ncm1, ncm2});
  HierNodeId top = h.addGroup("OPAMP", {core, lc, ln8});
  h.setRoot(top);
  return c;
}

PlacedSizingResult runMillerPlacedSizing(const Technology& tech,
                                         const OtaSpecs& specs,
                                         const PlacedSizingOptions& options) {
  Stopwatch sw;
  PlacedSizingResult out;
  const std::size_t n = std::max<std::size_t>(1, options.numCandidates);
  out.candidates.resize(n);

  // Sizing stage: sequential, one seed-schedule slot per candidate.  Each
  // run is a pure function of (tech, specs, options-with-seed), so the
  // candidate set does not depend on thread count or timing.
  std::vector<Circuit> circuits;
  circuits.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PlacedSizingCandidate& cand = out.candidates[i];
    SizingOptions so = options.sizing;
    so.seed = portfolioSeedAt(options.sizing.seed, i);
    cand.seed = so.seed;
    cand.sizing = runMillerSizing(tech, specs, so);
    circuits.push_back(makeMillerPlacementCircuit(tech, cand.sizing.design));
  }

  // Placement stage: the candidate x restart grid fans over the batch
  // placer's pool; results are index-aligned and 1-vs-N bit-identical.
  BatchPlacer batch;
  std::vector<EngineResult> placed =
      batch.placeAll(circuits, options.backend, options.placement);
  for (std::size_t i = 0; i < n; ++i) {
    out.candidates[i].circuit = std::move(circuits[i]);
    out.candidates[i].placement = std::move(placed[i]);
  }

  // Winner: a total order over exact per-candidate facts — specs met first,
  // then post-extraction violation, then placement cost, then schedule
  // index — so the reduction is deterministic and order-independent.
  out.bestIndex = 0;
  auto better = [&](const PlacedSizingCandidate& a,
                    const PlacedSizingCandidate& b) {
    if (a.sizing.meetsSpecsExtracted != b.sizing.meetsSpecsExtracted) {
      return a.sizing.meetsSpecsExtracted;
    }
    if (a.sizing.violationExtracted != b.sizing.violationExtracted) {
      return a.sizing.violationExtracted < b.sizing.violationExtracted;
    }
    return a.placement.cost < b.placement.cost;
  };
  for (std::size_t i = 1; i < n; ++i) {
    if (better(out.candidates[i], out.candidates[out.bestIndex])) {
      out.bestIndex = i;
    }
  }
  out.seconds = sw.seconds();
  return out;
}

}  // namespace als
