// Parasitic extraction from the instantiated layout template (Section V).
//
// The paper stresses that "extraction within sizing is not as expensive as
// it has been traditionally considered" — about 17% of total sizing time in
// their experiments — and that extraction beats estimation on accuracy.
// Here extraction walks the template geometry: device junction capacitances
// from the folded diffusion stripes, wire capacitance from the template's
// Manhattan net lengths.  The result feeds the performance model through
// the `Parasitics` struct; the blind flow simply passes zeros.
#pragma once

#include "layoutaware/ota.h"
#include "layoutaware/tech.h"
#include "layoutaware/template_gen.h"

namespace als {

/// Extracts the node parasitics the OTA model consumes.  Wall-clock cost is
/// measured by the caller (the flow reports the extraction time share).
Parasitics extractParasitics(const Technology& tech,
                             const FoldedCascodeDesign& design,
                             const TemplateLayout& layout);

}  // namespace als
