// Procedural layout template for the folded-cascode OTA (Section V).
//
// The paper generates layouts through Cadence PCELLS + SKILL templates; the
// equivalent here is a C++ procedural generator: a fixed row-based
// floorplan whose cell geometry follows the device sizes and fold counts.
// Template rows (bottom to top): N mirrors, N cascodes, input pair + tail,
// P cascodes, P sources; the two load capacitors sit as a block on the
// right.  The generator returns exact cell rectangles (DBU), the chip
// outline, and Manhattan net-length estimates for the extraction step —
// the "a priori revealed knowledge needed for evaluation of layout
// parasitics" that makes templates attractive for layout-aware sizing.
#pragma once

#include <string>
#include <vector>

#include "geom/placement.h"
#include "layoutaware/ota.h"
#include "layoutaware/tech.h"

namespace als {

struct TemplateLayout {
  Placement cells;                  ///< device cells in DBU
  std::vector<std::string> names;   ///< parallel cell names
  Coord width = 0;                  ///< chip extent [DBU]
  Coord height = 0;
  double outNetLen = 0.0;   ///< routed length of each output net [m]
  double foldNetLen = 0.0;  ///< routed length of each folding net [m]
  double aspectRatio() const {
    return height == 0 ? 0.0 : static_cast<double>(width) / static_cast<double>(height);
  }
  double areaUm2() const {
    return static_cast<double>(width) * static_cast<double>(height) * 1e-6;
  }
};

/// Instantiates the template for a design point.
TemplateLayout generateFoldedCascodeLayout(const Technology& tech,
                                           const FoldedCascodeDesign& design);

}  // namespace als
