// Square-law MOS device evaluation with layout-dependent parasitics.
//
// The electrical side is the classic strong-inversion model (gm, gds from
// W/L and bias current).  The *capacitances* are computed from the folded
// layout geometry: an m-fold transistor interleaves m gate fingers between
// m+1 diffusion stripes, so drain area — and with it the junction
// capacitance Cdb — shrinks roughly with 1/m while the gate footprint turns
// from a W-wide stripe into a compact m x (W/m) cell.  This geometry
// coupling is exactly why Section V optimizes "geometric parameters, like
// the number of folds" inside the electrical sizing loop.
#pragma once

#include "geom/rect.h"
#include "layoutaware/tech.h"

namespace als {

enum class MosType { N, P };

/// Electrical + layout description of one (possibly folded) transistor.
struct MosSpec {
  MosType type = MosType::N;
  double w = 1e-6;  ///< total channel width [m]
  double l = 0.35e-6;
  int folds = 1;    ///< number of parallel gate fingers (>= 1)
};

struct MosSmallSignal {
  double gm = 0;   ///< [A/V]
  double gds = 0;  ///< [A/V]
  double vov = 0;  ///< overdrive [V]
};

/// Small-signal parameters at drain current `id` (saturation assumed).
MosSmallSignal mosSmallSignal(const Technology& tech, const MosSpec& spec,
                              double id);

struct MosCaps {
  double cgs = 0;
  double cgd = 0;
  double cdb = 0;  ///< drain junction — shrinks with folding
  double csb = 0;
};

/// Geometry-derived capacitances of the folded cell.
MosCaps mosCaps(const Technology& tech, const MosSpec& spec);

/// Template cell footprint of the folded transistor [m].
double mosCellWidth(const Technology& tech, const MosSpec& spec);
double mosCellHeight(const Technology& tech, const MosSpec& spec);

/// Drain/source diffusion areas and perimeters [m^2, m] of the folded cell
/// (exposed for tests; mosCaps builds on these).
struct DiffusionGeometry {
  double drainArea = 0, drainPerim = 0;
  double sourceArea = 0, sourcePerim = 0;
};
DiffusionGeometry diffusionGeometry(const Technology& tech, const MosSpec& spec);

}  // namespace als
