// Simulation-based sizing optimization and the two flows of experiment E10
// (Fig. 10): electrical-only versus layout-aware.
//
// Both flows run the same annealing optimizer over the same design vector
// (currents, widths, lengths, fold counts).  They differ only in what each
// cost evaluation sees:
//
//   electrical-only  — performance without any layout parasitics, no
//                      geometric terms.  The layout is generated once at
//                      the end; re-simulation with extracted parasitics is
//                      the honest post-layout verdict (paper: "many of the
//                      electrical specifications ... are unfulfilled when
//                      layout parasitics are considered").
//   layout-aware     — every evaluation instantiates the template, runs
//                      extraction, and evaluates performance *with* the
//                      extracted parasitics; the cost additionally rewards
//                      compact near-square outlines (geometrically-
//                      constrained sizing).  Extraction wall-clock time is
//                      accumulated so the flow reports its share of the
//                      total sizing time (paper: about 17%).
#pragma once

#include <cstdint>

#include "layoutaware/extract.h"
#include "layoutaware/ota.h"
#include "layoutaware/template_gen.h"

namespace als {

/// Sweep count of the sizing annealers (both OTA flows).  The deterministic
/// budget contract is `movesPerTemp = iterations / kSizingAnnealSweeps` with
/// `maxSweeps = kSizingAnnealSweeps`, so a run executes ~`iterations` moves;
/// the constant must stay below the ~149-sweep freeze point of the 0.94
/// cooling schedule for the sweep cap to be the binding rule.
inline constexpr std::size_t kSizingAnnealSweeps = 120;

struct SizingOptions {
  bool layoutAware = true;
  double maxAspectRatio = 1.5;   ///< geometric restriction (aware flow only)
  double areaWeight = 0.15;      ///< area objective weight (aware flow only)
  std::size_t iterations = 6000; ///< annealing move budget (primary, deterministic)
  double timeLimitSec = 0.0;     ///< secondary wall-clock cap (0 = uncapped)
  std::uint64_t seed = 3;
};

struct SizingResult {
  FoldedCascodeDesign design;
  TemplateLayout layout;          ///< template of the final design
  OtaPerformance perfSizing;      ///< what the sizing loop believed
  OtaPerformance perfExtracted;   ///< post-layout truth (with extraction)
  double violationSizing = 0.0;   ///< spec violation the loop saw
  double violationExtracted = 0.0;///< spec violation after extraction
  bool meetsSpecsExtracted = false;
  double seconds = 0.0;           ///< total sizing wall-clock
  double extractSeconds = 0.0;    ///< time spent inside extraction
  double extractShare = 0.0;      ///< extractSeconds / seconds
  std::size_t evaluations = 0;
};

/// Runs one flow.
SizingResult runSizing(const Technology& tech, const OtaSpecs& specs,
                       const SizingOptions& options);

}  // namespace als
