// Layout-aware sizing hosted on the runtime layer: several independently
// seeded Miller sizing candidates, each turned into a placement netlist and
// placed IN PARALLEL through the deterministic BatchPlacer, then reduced to
// one winner by a total order.
//
// This is the scenario glue between the two halves of the paper the library
// otherwise demonstrates separately: Section V's sizing loop (sizing.h,
// miller.h) produces device dimensions, and the placement engines
// (engine/placement_engine.h) produce constrained floorplans.  Here the
// sized devices become real modules — footprints from the same cell
// derivation the layout template uses, Power annotations from the bias
// currents (the thermal objective's radiators), a discretized shape curve
// on the Miller capacitor (the soft block of the design) — so a candidate's
// placement runs with the thermal/shape workloads enabled end to end.
//
// Determinism contract: the candidate seeds come from the portfolio seed
// schedule (anneal/annealer.h), the sizing runs are sequential pure
// functions of (tech, specs, seed), the placements go through
// BatchPlacer::placeAll (bit-identical for 1 and N threads), and the winner
// reduction is a total order over exact results — so the whole flow is
// bit-identical across thread counts, the property runtime_test pins for
// the portfolio itself.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/placement_engine.h"
#include "layoutaware/miller.h"
#include "netlist/circuit.h"

namespace als {

struct PlacedSizingOptions {
  /// Per-candidate sizing knobs; `sizing.seed` is the BASE of the candidate
  /// seed schedule (candidate i sizes with portfolioSeedAt(seed, i)).
  SizingOptions sizing;
  std::size_t numCandidates = 4;
  /// Backend + engine options the candidates are placed with.  numThreads
  /// fans the candidate x restart grid; thermalWeight/shapeMoveProb work
  /// here like everywhere else (the candidate circuits carry Power
  /// annotations and a capacitor shape curve).
  EngineBackend backend = EngineBackend::SeqPair;
  EngineOptions placement;
};

struct PlacedSizingCandidate {
  std::uint64_t seed = 0;        ///< sizing seed of this candidate
  MillerSizingResult sizing;
  Circuit circuit;               ///< annotated placement netlist
  EngineResult placement;
};

struct PlacedSizingResult {
  std::vector<PlacedSizingCandidate> candidates;  ///< schedule order
  std::size_t bestIndex = 0;
  double seconds = 0.0;          ///< whole-flow wall clock

  const PlacedSizingCandidate& best() const { return candidates[bestIndex]; }
};

/// Builds the placement netlist of one sized Miller design: the Fig. 6
/// structure (same modules, nets, symmetry groups and hierarchy as
/// netlist/generators.h's makeMillerOpAmp) with footprints derived from the
/// sized device cells, Power annotations from the bias currents, and a
/// discretized shape curve on the Miller capacitor.  Pure function of its
/// arguments.
Circuit makeMillerPlacementCircuit(const Technology& tech,
                                   const MillerDesign& design);

/// Runs the whole flow: size numCandidates designs (sequential,
/// seed-scheduled), place them all in parallel, pick the winner by
/// (meets specs, spec violation, placement cost, schedule index).
PlacedSizingResult runMillerPlacedSizing(const Technology& tech,
                                         const OtaSpecs& specs,
                                         const PlacedSizingOptions& options);

}  // namespace als
