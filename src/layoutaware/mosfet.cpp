#include "layoutaware/mosfet.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace als {

MosSmallSignal mosSmallSignal(const Technology& tech, const MosSpec& spec,
                              double id) {
  assert(id > 0 && spec.w > 0 && spec.l >= tech.minL && spec.folds >= 1);
  double kp = spec.type == MosType::N ? tech.kpN : tech.kpP;
  double beta = kp * spec.w / spec.l;
  MosSmallSignal ss;
  ss.vov = std::sqrt(2.0 * id / beta);
  ss.gm = 2.0 * id / ss.vov;
  double early = (spec.type == MosType::N ? tech.earlyN : tech.earlyP) * spec.l;
  ss.gds = id / early;
  return ss;
}

DiffusionGeometry diffusionGeometry(const Technology& tech, const MosSpec& spec) {
  // m fingers between m+1 diffusion stripes of width fingerW = W/m.
  // Alternating D-S-D-S...: ceil((m+1)/2) stripes on one terminal,
  // floor((m+1)/2) on the other; shared stripes are the folding win.
  int m = std::max(1, spec.folds);
  double fingerW = spec.w / m;
  int stripes = m + 1;
  int drainStripes = stripes / 2;        // interior-first convention
  int sourceStripes = stripes - drainStripes;
  double stripeArea = fingerW * tech.diffExt;
  double stripePerim = 2.0 * tech.diffExt + 2.0 * fingerW;
  DiffusionGeometry g;
  g.drainArea = drainStripes * stripeArea;
  g.drainPerim = drainStripes * stripePerim;
  g.sourceArea = sourceStripes * stripeArea;
  g.sourcePerim = sourceStripes * stripePerim;
  return g;
}

MosCaps mosCaps(const Technology& tech, const MosSpec& spec) {
  DiffusionGeometry g = diffusionGeometry(tech, spec);
  MosCaps c;
  c.cgs = (2.0 / 3.0) * tech.cox * spec.w * spec.l + tech.cgdo * spec.w;
  c.cgd = tech.cgdo * spec.w;
  c.cdb = tech.cj * g.drainArea + tech.cjsw * g.drainPerim;
  c.csb = tech.cj * g.sourceArea + tech.cjsw * g.sourcePerim;
  return c;
}

double mosCellWidth(const Technology& tech, const MosSpec& spec) {
  int m = std::max(1, spec.folds);
  // m gates plus m+1 diffusion stripes at the poly pitch.
  return m * (spec.l + tech.polyPitch) + tech.diffExt;
}

double mosCellHeight(const Technology& tech, const MosSpec& spec) {
  int m = std::max(1, spec.folds);
  return spec.w / m + 2.0 * tech.diffExt;
}

}  // namespace als
