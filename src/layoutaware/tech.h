// Technology model for the layout-aware sizing flow (Section V).
//
// The paper's implementation runs on a production PDK through Cadence
// PCELLS/SKILL and a SPICE-class simulator; neither is redistributable, so
// the flow here runs on a self-contained 0.35 um-class technology card:
// square-law device parameters plus the layout constants (pitches, junction
// and wire capacitances) the template generator and extractor need.  The
// numbers are textbook-typical for a 3.3 V 0.35 um CMOS node; the flow
// conclusions (layout-aware sizing meets post-layout specs at small CPU
// cost) do not depend on the exact values.  See DESIGN.md, "Substitutions".
#pragma once

namespace als {

struct Technology {
  // --- electrical (square-law) ---
  double vdd = 3.3;        ///< supply [V]
  double kpN = 170e-6;     ///< NMOS transconductance parameter [A/V^2]
  double kpP = 58e-6;      ///< PMOS transconductance parameter [A/V^2]
  double vtN = 0.50;       ///< NMOS threshold [V]
  double vtP = 0.65;       ///< PMOS threshold magnitude [V]
  double earlyN = 8.0e6;   ///< NMOS Early voltage per channel length [V/m]
  double earlyP = 6.0e6;   ///< PMOS Early voltage per channel length [V/m]
  double cox = 4.6e-3;     ///< gate capacitance [F/m^2]
  double cgdo = 0.12e-9;   ///< gate-drain overlap [F/m]

  // --- junctions (layout-dependent!) ---
  double cj = 0.94e-3;     ///< bottom-plate junction capacitance [F/m^2]
  double cjsw = 0.25e-9;   ///< sidewall junction capacitance [F/m]

  // --- layout template constants ---
  double minL = 0.35e-6;     ///< minimum channel length [m]
  double diffExt = 0.85e-6;  ///< source/drain diffusion extension [m]
  double polyPitch = 1.1e-6; ///< gate-to-gate pitch inside a folded cell [m]
  double rowSpacing = 2.4e-6;///< spacing between template rows [m]
  double cellSpacing = 1.6e-6;///< spacing between cells in a row [m]
  double capDensity = 0.86e-3;///< MiM/poly capacitor density [F/m^2]

  // --- wiring ---
  double wireCapPerM = 0.11e-9;  ///< routed-net capacitance [F/m]

  /// The default 0.35 um card.
  static Technology c035() { return Technology{}; }
};

}  // namespace als
