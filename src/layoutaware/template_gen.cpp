#include "layoutaware/template_gen.h"

#include <algorithm>
#include <cmath>

namespace als {

namespace {

constexpr double kMetersToDbu = 1e9;  // 1 DBU = 1 nm

Coord toDbu(double meters) {
  return static_cast<Coord>(std::llround(meters * kMetersToDbu));
}

}  // namespace

TemplateLayout generateFoldedCascodeLayout(const Technology& tech,
                                           const FoldedCascodeDesign& d) {
  TemplateLayout out;

  struct RowSpec {
    std::string base;
    MosSpec spec;
  };
  // Bottom-up row order keeps matched devices side by side and the signal
  // flow vertical (mirrors -> cascodes -> pair -> P stack).
  std::vector<RowSpec> rows{
      {"MNM", d.nMirror()},   {"MNC", d.nCascode()}, {"M1", d.inputPair()},
      {"MPC", d.pCascode()},  {"MPS", d.pSource()},
  };

  const Coord spacing = toDbu(tech.cellSpacing);
  const Coord rowGap = toDbu(tech.rowSpacing);

  Coord y = 0;
  Coord coreWidth = 0;
  std::vector<Coord> rowCenterY;
  for (const RowSpec& row : rows) {
    Coord cw = toDbu(mosCellWidth(tech, row.spec));
    Coord ch = toDbu(mosCellHeight(tech, row.spec));
    // Matched pair: left and right device of the differential half-circuits.
    out.cells.push({0, y, cw, ch});
    out.names.push_back(row.base + "a");
    out.cells.push({cw + spacing, y, cw, ch});
    out.names.push_back(row.base + "b");
    // Tail transistor joins the input-pair row on the right.
    if (row.base == "M1") {
      Coord tw = toDbu(mosCellWidth(tech, d.tail()));
      Coord th = toDbu(mosCellHeight(tech, d.tail()));
      out.cells.push({2 * cw + 2 * spacing, y, tw, th});
      out.names.push_back("MT");
      coreWidth = std::max(coreWidth, 2 * cw + 2 * spacing + tw);
    }
    coreWidth = std::max(coreWidth, 2 * cw + spacing);
    rowCenterY.push_back(y + ch / 2);
    y += ch + rowGap;
  }
  // Load capacitors as a square block column on the right of the core.
  const double capArea = d.cl / tech.capDensity;           // [m^2]
  const Coord capSide = toDbu(std::sqrt(capArea));
  const Coord capX = coreWidth + 2 * spacing;
  out.cells.push({capX, 0, capSide, capSide});
  out.names.push_back("CLa");
  out.cells.push({capX, capSide + spacing, capSide, capSide});
  out.names.push_back("CLb");

  Rect bb = out.cells.boundingBox();
  out.width = bb.w;
  out.height = bb.h;

  // Net-length estimates (Manhattan, center to center).
  // Output net: N cascode drain -> P cascode drain -> load cap.
  const double dbu = 1.0 / kMetersToDbu;
  double outVertical = std::abs(static_cast<double>(rowCenterY[3] - rowCenterY[1]));
  double outToCap = static_cast<double>(capX) + capSide / 2.0;
  out.outNetLen = (outVertical + outToCap) * dbu;
  // Folding net: input-pair drain -> P cascode source (adjacent rows).
  out.foldNetLen =
      (std::abs(static_cast<double>(rowCenterY[3] - rowCenterY[2])) +
       static_cast<double>(coreWidth) / 4.0) *
      dbu;
  return out;
}

}  // namespace als
