#include "layoutaware/sizing.h"

#include <algorithm>
#include <cmath>

#include "anneal/annealer.h"
#include "util/stopwatch.h"

namespace als {

namespace {

/// Clamps the design vector into its box constraints (and the fold counts
/// into sensible integers).
FoldedCascodeDesign clamped(FoldedCascodeDesign d, const Technology& tech) {
  auto clampD = [](double v, double lo, double hi) {
    return std::min(hi, std::max(lo, v));
  };
  d.ib = clampD(d.ib, 40e-6, 1.2e-3);
  d.w1 = clampD(d.w1, 4e-6, 400e-6);
  d.wp = clampD(d.wp, 4e-6, 400e-6);
  d.wn = clampD(d.wn, 4e-6, 400e-6);
  d.l1 = clampD(d.l1, tech.minL, 4e-6);
  d.lp = clampD(d.lp, tech.minL, 4e-6);
  d.ln = clampD(d.ln, tech.minL, 4e-6);
  d.m1 = std::clamp(d.m1, 1, 16);
  d.mp = std::clamp(d.mp, 1, 16);
  d.mn = std::clamp(d.mn, 1, 16);
  return d;
}

}  // namespace

SizingResult runSizing(const Technology& tech, const OtaSpecs& specs,
                       const SizingOptions& options) {
  Stopwatch total;
  double extractSeconds = 0.0;
  std::size_t evaluations = 0;

  auto evaluate = [&](const FoldedCascodeDesign& d, bool withLayout,
                      TemplateLayout* layoutOut, OtaPerformance* perfOut) {
    ++evaluations;
    Parasitics par;  // zeros: the schematic-only view
    TemplateLayout layout;
    if (withLayout) {
      layout = generateFoldedCascodeLayout(tech, d);
      Stopwatch ex;
      par = extractParasitics(tech, d, layout);
      extractSeconds += ex.seconds();
    }
    OtaPerformance perf = evalFoldedCascode(tech, d, par);
    if (layoutOut) *layoutOut = layout;
    if (perfOut) *perfOut = perf;
    double cost = specViolation(perf, specs);
    if (withLayout) {
      // Geometrically-constrained sizing: aspect-ratio restriction plus an
      // area objective (normalized to a 200 um x 200 um reference).
      double ar = std::max(layout.aspectRatio(), 1.0 / std::max(layout.aspectRatio(), 1e-9));
      if (ar > options.maxAspectRatio) cost += (ar - options.maxAspectRatio);
      cost += options.areaWeight * layout.areaUm2() / (200.0 * 200.0);
    } else {
      // Power objective so the blind flow optimizes to the spec boundary —
      // the behaviour that makes pre-layout optimism fatal (cf. Fig. 10).
      cost += 0.08 * (d.ib / 1e-3);
    }
    return cost;
  };

  auto cost = [&](const FoldedCascodeDesign& d) {
    return evaluate(d, options.layoutAware, nullptr, nullptr);
  };

  auto move = [&](const FoldedCascodeDesign& d, Rng& rng) {
    FoldedCascodeDesign next = d;
    switch (rng.index(10)) {
      case 0: next.ib *= std::exp(rng.normal(0.0, 0.18)); break;
      case 1: next.w1 *= std::exp(rng.normal(0.0, 0.22)); break;
      case 2: next.wp *= std::exp(rng.normal(0.0, 0.22)); break;
      case 3: next.wn *= std::exp(rng.normal(0.0, 0.22)); break;
      case 4: next.l1 *= std::exp(rng.normal(0.0, 0.15)); break;
      case 5: next.lp *= std::exp(rng.normal(0.0, 0.15)); break;
      case 6: next.ln *= std::exp(rng.normal(0.0, 0.15)); break;
      case 7: next.m1 += static_cast<int>(rng.uniformInt(-2, 2)); break;
      case 8: next.mp += static_cast<int>(rng.uniformInt(-2, 2)); break;
      case 9: next.mn += static_cast<int>(rng.uniformInt(-2, 2)); break;
    }
    return clamped(next, tech);
  };

  AnnealOptions annealOpt;
  annealOpt.seed = options.seed;
  // `iterations` is the primary, deterministic budget (see
  // kSizingAnnealSweeps); the wall clock only acts as a secondary cap.
  annealOpt.maxSweeps = kSizingAnnealSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.movesPerTemp =
      std::max<std::size_t>(options.iterations / kSizingAnnealSweeps, 10);
  annealOpt.coolingFactor = 0.94;
  FoldedCascodeDesign init = clamped(FoldedCascodeDesign{}, tech);
  auto annealed = anneal(init, cost, move, annealOpt);

  SizingResult result;
  result.design = annealed.best;
  result.layout = generateFoldedCascodeLayout(tech, result.design);

  // What the loop believed about its final answer...
  Parasitics none;
  result.perfSizing =
      options.layoutAware
          ? evalFoldedCascode(tech, result.design,
                              extractParasitics(tech, result.design, result.layout))
          : evalFoldedCascode(tech, result.design, none);
  result.violationSizing = specViolation(result.perfSizing, specs);

  // ...and the post-layout truth.
  Parasitics extracted = extractParasitics(tech, result.design, result.layout);
  result.perfExtracted = evalFoldedCascode(tech, result.design, extracted);
  result.violationExtracted = specViolation(result.perfExtracted, specs);
  result.meetsSpecsExtracted = result.violationExtracted <= 1e-9;

  result.seconds = total.seconds();
  result.extractSeconds = extractSeconds;
  result.extractShare =
      result.seconds > 0 ? extractSeconds / result.seconds : 0.0;
  result.evaluations = evaluations;
  return result;
}

}  // namespace als
