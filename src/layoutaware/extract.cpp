#include "layoutaware/extract.h"

namespace als {

Parasitics extractParasitics(const Technology& tech,
                             const FoldedCascodeDesign& design,
                             const TemplateLayout& layout) {
  Parasitics par;
  // Wire capacitance of the two critical nets, from template route lengths.
  par.cOut = tech.wireCapPerM * layout.outNetLen;
  par.cFold = tech.wireCapPerM * layout.foldNetLen;
  // Junction capacitances from the folded diffusion geometry (the layout's
  // AD/AS/PD/PS): cascode drains load the outputs; pair and P-source drains
  // plus the P-cascode source load the folding node.
  MosCaps cPc = mosCaps(tech, design.pCascode());
  MosCaps cNc = mosCaps(tech, design.nCascode());
  MosCaps c1 = mosCaps(tech, design.inputPair());
  MosCaps cPs = mosCaps(tech, design.pSource());
  par.cOut += cPc.cdb + cNc.cdb;
  par.cFold += c1.cdb + cPs.cdb + cPc.csb;
  return par;
}

}  // namespace als
