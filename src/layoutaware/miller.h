// Two-stage Miller-compensated op amp (the paper's Fig. 6 circuit):
// design vector, analytical performance model, layout template and
// parasitic extraction — the second circuit class of the layout-aware flow.
//
// Device naming follows Fig. 6: P-input pair P1/P2, NMOS mirror N3/N4,
// P-bias legs P5/P6/P7, NMOS output driver N8, Miller capacitor C.
//
//        VDD ── P5 ─────────── P6 ──────── P7
//               │ tail                      │
//           P1 ─┴─ P2                       │ out
//           │       │■──── Cc ─────────────■│
//           N3 ──── N4 ─────── gate ────── N8
//        VSS ───────────────────────────────
//
// Classic small-signal results: A = gm1/(gds2+gds4) * gm8/(gds8+gds7),
// GBW = gm1 / (2 pi Cc), a right-half-plane zero at gm8/Cc, the output
// pole at ~gm8/Cout.  As with the folded cascode, junction and wire
// capacitances are layout facts delivered by extraction only.
#pragma once

#include "geom/placement.h"
#include "layoutaware/mosfet.h"
#include "layoutaware/ota.h"
#include "layoutaware/sizing.h"
#include "layoutaware/tech.h"
#include "layoutaware/template_gen.h"

namespace als {

struct MillerDesign {
  double ib = 40e-6;    ///< first-stage tail current [A]
  double i2 = 160e-6;   ///< output-stage current [A]
  double w1 = 30e-6;    ///< input pair (P) width
  double l1 = 0.7e-6;
  int m1 = 2;
  double wn = 15e-6;    ///< mirror N3/N4 width
  double ln = 0.7e-6;
  int mn = 1;
  double w8 = 60e-6;    ///< output driver N8 width
  double l8 = 0.5e-6;
  int m8 = 2;
  double wp = 40e-6;    ///< bias legs P5/P6/P7 width
  double lp = 1.0e-6;
  int mp = 2;
  double cc = 1.5e-12;  ///< Miller capacitor [F]
  double cl = 5e-12;    ///< load [F] (testbench-fixed)

  MosSpec inputPair() const { return {MosType::P, w1, l1, m1}; }
  MosSpec mirror() const { return {MosType::N, wn, ln, mn}; }
  MosSpec driver() const { return {MosType::N, w8, l8, m8}; }
  MosSpec biasLeg() const { return {MosType::P, wp, lp, mp}; }
};

/// Layout-dependent node capacitances of the Miller op amp.
struct MillerParasitics {
  double cNode1 = 0.0;  ///< first-stage output (N4 drain / N8 gate) [F]
  double cOut = 0.0;    ///< output node extras [F]
};

/// Evaluates gain/GBW/PM/SR/power; reuses the OtaPerformance carrier.
OtaPerformance evalMiller(const Technology& tech, const MillerDesign& design,
                          const MillerParasitics& parasitics);

/// Row-based layout template for the Miller op amp (device cells + the two
/// capacitor blocks), with Manhattan net-length estimates.
TemplateLayout generateMillerLayout(const Technology& tech,
                                    const MillerDesign& design);

/// Extraction: junction + wire capacitances of node 1 and the output.
MillerParasitics extractMillerParasitics(const Technology& tech,
                                         const MillerDesign& design,
                                         const TemplateLayout& layout);

/// Sizing flows for the Miller op amp (same structure as runSizing for the
/// folded cascode: layoutAware toggles extraction-in-the-loop + geometry).
struct MillerSizingResult {
  MillerDesign design;
  TemplateLayout layout;
  OtaPerformance perfSizing;
  OtaPerformance perfExtracted;
  double violationSizing = 0.0;
  double violationExtracted = 0.0;
  bool meetsSpecsExtracted = false;
  double seconds = 0.0;
  double extractShare = 0.0;
  std::size_t evaluations = 0;
};

MillerSizingResult runMillerSizing(const Technology& tech, const OtaSpecs& specs,
                                   const SizingOptions& options);

}  // namespace als
