#include "layoutaware/ota.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace als {

OtaPerformance evalFoldedCascode(const Technology& tech,
                                 const FoldedCascodeDesign& d,
                                 const Parasitics& par) {
  OtaPerformance perf;

  // Bias: the tail splits into the pair; the P sources carry pair current
  // plus the cascode branch current (chosen equal to Ib/2 for symmetric
  // slewing), so the output branch runs at Ib/2.
  const double iPair = d.ib / 2.0;
  const double iBranch = d.ib / 2.0;
  const double iSource = iPair + iBranch;

  MosSmallSignal ss1 = mosSmallSignal(tech, d.inputPair(), iPair);
  MosSmallSignal ssPs = mosSmallSignal(tech, d.pSource(), iSource);
  MosSmallSignal ssPc = mosSmallSignal(tech, d.pCascode(), iBranch);
  MosSmallSignal ssNc = mosSmallSignal(tech, d.nCascode(), iBranch);
  MosSmallSignal ssNm = mosSmallSignal(tech, d.nMirror(), iBranch);

  // Output resistance: N cascode stack (boosted mirror) in parallel with
  // the P cascode stack, which also shields the pair/source node.
  const double rDown = (ssNc.gm / ssNc.gds) / ssNm.gds;
  const double rUp = (ssPc.gm / ssPc.gds) / (ssPs.gds + ss1.gds);
  const double rOut = 1.0 / (1.0 / rDown + 1.0 / rUp);
  const double av = ss1.gm * rOut;
  perf.gainDb = 20.0 * std::log10(std::max(av, 1e-12));

  // Capacitance at the output: load + schematic-known gate overlaps of the
  // cascode drains.  Junction and wire capacitances are layout facts and
  // enter only through `par` — the schematic-level netlist has no diffusion
  // areas (the classic missing-AD/AS optimism of pre-layout simulation).
  MosCaps cPc = mosCaps(tech, d.pCascode());
  MosCaps cNc = mosCaps(tech, d.nCascode());
  const double cOut = d.cl + par.cOut + cPc.cgd + cNc.cgd;
  perf.gbwHz = ss1.gm / (2.0 * std::numbers::pi * cOut);

  // Non-dominant pole at the folding node (input-pair drain = P-cascode
  // source): gate capacitance of the cascode plus whatever the layout parks
  // there (junctions of pair / P source / cascode source, wire).
  MosCaps c1 = mosCaps(tech, d.inputPair());
  MosCaps cPs = mosCaps(tech, d.pSource());
  const double cFold = par.cFold + cPc.cgs + c1.cgd + cPs.cgd;
  const double p2 = ssPc.gm / (2.0 * std::numbers::pi * cFold);
  const double pmRad = std::numbers::pi / 2.0 - std::atan(perf.gbwHz / p2);
  perf.pmDeg = pmRad * 180.0 / std::numbers::pi;

  perf.srVps = d.ib / cOut;
  // Two output branches plus the tail and a 10% bias overhead.
  perf.powerW = tech.vdd * (d.ib + 2.0 * iBranch) * 1.1;

  // Headroom: the stack VDD >= |vov_ps| + |vov_pc| + vov_nc + vov_nm with
  // 0.4 V of swing margin; the tail needs its own saturation room.
  const double stack =
      ssPs.vov + ssPc.vov + ssNc.vov + ssNm.vov + 0.4;
  MosSmallSignal ssT = mosSmallSignal(tech, d.tail(), d.ib);
  perf.saturated = stack < tech.vdd && (ss1.vov + ssT.vov + 0.3) < tech.vdd / 2.0;
  return perf;
}

double specViolation(const OtaPerformance& perf, const OtaSpecs& specs) {
  double v = 0.0;
  auto atLeast = [&](double value, double bound) {
    if (value < bound) v += (bound - value) / bound;
  };
  atLeast(perf.gainDb, specs.minGainDb);
  atLeast(perf.gbwHz, specs.minGbwHz);
  atLeast(perf.pmDeg, specs.minPmDeg);
  atLeast(perf.srVps, specs.minSrVps);
  if (perf.powerW > specs.maxPowerW) {
    v += (perf.powerW - specs.maxPowerW) / specs.maxPowerW;
  }
  if (!perf.saturated) v += 1.0;
  return v;
}

}  // namespace als
