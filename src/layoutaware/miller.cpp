#include "layoutaware/miller.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "anneal/annealer.h"
#include "layoutaware/extract.h"
#include "util/stopwatch.h"

namespace als {

OtaPerformance evalMiller(const Technology& tech, const MillerDesign& d,
                          const MillerParasitics& par) {
  OtaPerformance perf;
  const double iHalf = d.ib / 2.0;

  MosSmallSignal ss1 = mosSmallSignal(tech, d.inputPair(), iHalf);
  MosSmallSignal ssN = mosSmallSignal(tech, d.mirror(), iHalf);
  MosSmallSignal ss8 = mosSmallSignal(tech, d.driver(), d.i2);
  MosSmallSignal ssP = mosSmallSignal(tech, d.biasLeg(), d.i2);

  const double a1 = ss1.gm / (ss1.gds + ssN.gds);
  const double a2 = ss8.gm / (ss8.gds + ssP.gds);
  perf.gainDb = 20.0 * std::log10(std::max(a1 * a2, 1e-12));

  // Dominant pole set by Miller compensation; unity-gain frequency.
  perf.gbwHz = ss1.gm / (2.0 * std::numbers::pi * d.cc);

  // Output pole and the right-half-plane zero: both eat phase.  The gate
  // capacitance of N8 is schematic-known; junctions/wires arrive via `par`.
  MosCaps c8 = mosCaps(tech, d.driver());
  const double cOut = d.cl + par.cOut + c8.cgd;
  const double p2 = ss8.gm / (2.0 * std::numbers::pi * cOut);
  const double z = ss8.gm / (2.0 * std::numbers::pi * d.cc);
  // First-stage node pole (mirror gate + N8 gate + layout extras), usually
  // pushed out by Cc but parasitic-sensitive.
  MosCaps cN = mosCaps(tech, d.mirror());
  const double cNode1 = par.cNode1 + c8.cgs + cN.cgs;
  const double p3 =
      (ss1.gds + ssN.gds + ss8.gm * d.cc / std::max(cOut, 1e-15)) /
      (2.0 * std::numbers::pi * std::max(cNode1, 1e-18));
  double pm = 90.0 - std::atan(perf.gbwHz / p2) * 180.0 / std::numbers::pi -
              std::atan(perf.gbwHz / z) * 180.0 / std::numbers::pi -
              std::atan(perf.gbwHz / p3) * 180.0 / std::numbers::pi;
  perf.pmDeg = pm;

  perf.srVps = std::min(d.ib / d.cc, d.i2 / (cOut));
  perf.powerW = tech.vdd * (d.ib + d.i2) * 1.1;

  const double stack1 = ssP.vov + ss1.vov + ssN.vov + 0.3;
  perf.saturated = stack1 < tech.vdd && (ss8.vov + ssP.vov + 0.4) < tech.vdd;
  return perf;
}

TemplateLayout generateMillerLayout(const Technology& tech, const MillerDesign& d) {
  TemplateLayout out;
  auto toDbu = [](double m) { return static_cast<Coord>(std::llround(m * 1e9)); };
  const Coord spacing = toDbu(tech.cellSpacing);
  const Coord rowGap = toDbu(tech.rowSpacing);

  struct RowSpec {
    const char* a;
    const char* b;
    MosSpec spec;
  };
  std::vector<RowSpec> rows{
      {"N3", "N4", d.mirror()},
      {"P1", "P2", d.inputPair()},
      {"P5", "P6", d.biasLeg()},
  };
  Coord y = 0;
  Coord coreWidth = 0;
  std::vector<Coord> rowCenterY;
  for (const RowSpec& row : rows) {
    Coord cw = toDbu(mosCellWidth(tech, row.spec));
    Coord ch = toDbu(mosCellHeight(tech, row.spec));
    out.cells.push({0, y, cw, ch});
    out.names.push_back(row.a);
    out.cells.push({cw + spacing, y, cw, ch});
    out.names.push_back(row.b);
    coreWidth = std::max(coreWidth, 2 * cw + spacing);
    rowCenterY.push_back(y + ch / 2);
    y += ch + rowGap;
  }
  // P7 and the output driver N8 share a column right of the core.
  Coord x8 = coreWidth + 2 * spacing;
  Coord w8 = toDbu(mosCellWidth(tech, d.driver()));
  Coord h8 = toDbu(mosCellHeight(tech, d.driver()));
  Coord wp7 = toDbu(mosCellWidth(tech, d.biasLeg()));
  Coord hp7 = toDbu(mosCellHeight(tech, d.biasLeg()));
  out.cells.push({x8, 0, w8, h8});
  out.names.push_back("N8");
  out.cells.push({x8, h8 + spacing, wp7, hp7});
  out.names.push_back("P7");

  // Miller cap between core and driver column top; load cap rightmost.
  Coord capSide = toDbu(std::sqrt(d.cc / tech.capDensity));
  Coord clSide = toDbu(std::sqrt(d.cl / tech.capDensity));
  Coord capX = std::max(x8 + std::max(w8, wp7), coreWidth) + 2 * spacing;
  out.cells.push({capX, 0, capSide, capSide});
  out.names.push_back("CC");
  out.cells.push({capX, capSide + spacing, clSide, clSide});
  out.names.push_back("CL");

  Rect bb = out.cells.boundingBox();
  out.width = bb.w;
  out.height = bb.h;

  // Node-1 net: mirror drain row -> driver gate column.
  out.foldNetLen = (static_cast<double>(x8) + w8 / 2.0 +
                    std::abs(static_cast<double>(rowCenterY[0]))) *
                   1e-9;
  // Output net: driver drain -> Miller cap -> load cap.
  out.outNetLen = (static_cast<double>(capX - x8) + capSide +
                   static_cast<double>(capSide + spacing)) *
                  1e-9;
  return out;
}

MillerParasitics extractMillerParasitics(const Technology& tech,
                                         const MillerDesign& d,
                                         const TemplateLayout& layout) {
  MillerParasitics par;
  MosCaps cN = mosCaps(tech, d.mirror());
  MosCaps c1 = mosCaps(tech, d.inputPair());
  MosCaps c8 = mosCaps(tech, d.driver());
  MosCaps cP = mosCaps(tech, d.biasLeg());
  // Node 1: N4 drain + P2 drain junctions + wire to the driver gate.
  par.cNode1 = cN.cdb + c1.cdb + tech.wireCapPerM * layout.foldNetLen;
  // Output: N8 + P7 drain junctions + output routing.
  par.cOut = c8.cdb + cP.cdb + tech.wireCapPerM * layout.outNetLen;
  return par;
}

namespace {

MillerDesign clampedMiller(MillerDesign d, const Technology& tech) {
  auto clampD = [](double v, double lo, double hi) {
    return std::min(hi, std::max(lo, v));
  };
  d.ib = clampD(d.ib, 10e-6, 400e-6);
  d.i2 = clampD(d.i2, 40e-6, 1.5e-3);
  d.w1 = clampD(d.w1, 2e-6, 300e-6);
  d.wn = clampD(d.wn, 2e-6, 300e-6);
  d.w8 = clampD(d.w8, 4e-6, 600e-6);
  d.wp = clampD(d.wp, 2e-6, 300e-6);
  d.l1 = clampD(d.l1, tech.minL, 4e-6);
  d.ln = clampD(d.ln, tech.minL, 4e-6);
  d.l8 = clampD(d.l8, tech.minL, 2e-6);
  d.lp = clampD(d.lp, tech.minL, 4e-6);
  d.cc = clampD(d.cc, 0.3e-12, 8e-12);
  d.m1 = std::clamp(d.m1, 1, 16);
  d.mn = std::clamp(d.mn, 1, 16);
  d.m8 = std::clamp(d.m8, 1, 24);
  d.mp = std::clamp(d.mp, 1, 16);
  return d;
}

}  // namespace

MillerSizingResult runMillerSizing(const Technology& tech, const OtaSpecs& specs,
                                   const SizingOptions& options) {
  Stopwatch total;
  double extractSeconds = 0.0;
  std::size_t evaluations = 0;

  auto costOf = [&](const MillerDesign& d) {
    ++evaluations;
    MillerParasitics par;
    TemplateLayout layout;
    if (options.layoutAware) {
      layout = generateMillerLayout(tech, d);
      Stopwatch ex;
      par = extractMillerParasitics(tech, d, layout);
      extractSeconds += ex.seconds();
    }
    double cost = specViolation(evalMiller(tech, d, par), specs);
    if (options.layoutAware) {
      double ar = layout.aspectRatio();
      ar = std::max(ar, 1.0 / std::max(ar, 1e-9));
      if (ar > options.maxAspectRatio) cost += (ar - options.maxAspectRatio);
      cost += options.areaWeight * layout.areaUm2() / (200.0 * 200.0);
    } else {
      cost += 0.08 * ((d.ib + d.i2) / 1e-3);
    }
    return cost;
  };

  auto move = [&](const MillerDesign& d, Rng& rng) {
    MillerDesign next = d;
    switch (rng.index(12)) {
      case 0: next.ib *= std::exp(rng.normal(0.0, 0.18)); break;
      case 1: next.i2 *= std::exp(rng.normal(0.0, 0.18)); break;
      case 2: next.w1 *= std::exp(rng.normal(0.0, 0.22)); break;
      case 3: next.wn *= std::exp(rng.normal(0.0, 0.22)); break;
      case 4: next.w8 *= std::exp(rng.normal(0.0, 0.22)); break;
      case 5: next.wp *= std::exp(rng.normal(0.0, 0.22)); break;
      case 6: next.l1 *= std::exp(rng.normal(0.0, 0.15)); break;
      case 7: next.ln *= std::exp(rng.normal(0.0, 0.15)); break;
      case 8: next.l8 *= std::exp(rng.normal(0.0, 0.15)); break;
      case 9: next.cc *= std::exp(rng.normal(0.0, 0.2)); break;
      case 10: next.m1 += static_cast<int>(rng.uniformInt(-2, 2)); break;
      case 11: next.m8 += static_cast<int>(rng.uniformInt(-2, 2)); break;
    }
    return clampedMiller(next, tech);
  };

  AnnealOptions annealOpt;
  annealOpt.seed = options.seed;
  // Same sweep-budgeted contract as runSizing: `iterations` is primary and
  // deterministic, the wall clock only a secondary cap.
  annealOpt.maxSweeps = kSizingAnnealSweeps;
  annealOpt.timeLimitSec = options.timeLimitSec;
  annealOpt.movesPerTemp =
      std::max<std::size_t>(options.iterations / kSizingAnnealSweeps, 10);
  annealOpt.coolingFactor = 0.94;
  auto annealed =
      anneal(clampedMiller(MillerDesign{}, tech), costOf, move, annealOpt);

  MillerSizingResult result;
  result.design = annealed.best;
  result.layout = generateMillerLayout(tech, result.design);
  MillerParasitics extracted =
      extractMillerParasitics(tech, result.design, result.layout);
  MillerParasitics none;
  result.perfSizing = options.layoutAware
                          ? evalMiller(tech, result.design, extracted)
                          : evalMiller(tech, result.design, none);
  result.perfExtracted = evalMiller(tech, result.design, extracted);
  result.violationSizing = specViolation(result.perfSizing, specs);
  result.violationExtracted = specViolation(result.perfExtracted, specs);
  result.meetsSpecsExtracted = result.violationExtracted <= 1e-9;
  result.seconds = total.seconds();
  result.extractShare =
      result.seconds > 0 ? extractSeconds / result.seconds : 0.0;
  result.evaluations = evaluations;
  return result;
}

}  // namespace als
