// Fully-differential folded-cascode OTA: design vector and analytical
// performance model (the "simulator" of the layout-aware flow).
//
// The paper's flow evaluates thousands of sizings with SPICE; this model
// substitutes closed-form small-signal analysis of the same circuit class
// used in Fig. 10 — a fully-differential folded-cascode amplifier:
//
//             VDD ----+--------+
//            MPS (x2) |        |  P current sources
//            MPC (x2) |        |  P cascodes
//   out- ----+--------)--------+---- out+
//            MNC (x2) |        |  N cascodes
//            MNM (x2) |        |  N mirrors
//             VSS ----+--------+
//   with input pair M1/M2 folding into the MNC sources, tail MT.
//
// Performance figures: dc gain, unity-gain bandwidth, phase margin (from
// the non-dominant pole at the folding node), slew rate, power.  The
// parasitic capacitances entering GBW/PM/SR come from extraction — that is
// precisely the layout dependence the flow does or does not see.
#pragma once

#include "layoutaware/mosfet.h"
#include "layoutaware/tech.h"

namespace als {

/// Free variables of the sizing problem (fully differential, so every
/// device exists twice; widths are per device).
struct FoldedCascodeDesign {
  double ib = 200e-6;  ///< tail current [A]
  double w1 = 40e-6;   ///< input pair width
  double l1 = 0.7e-6;
  int m1 = 2;          ///< input pair folds
  double wp = 60e-6;   ///< P source + P cascode width
  double lp = 0.7e-6;
  int mp = 2;
  double wn = 30e-6;   ///< N cascode + N mirror width
  double ln = 0.7e-6;
  int mn = 2;
  double cl = 2e-12;   ///< single-ended load [F] (fixed by the testbench)

  MosSpec inputPair() const { return {MosType::N, w1, l1, m1}; }
  MosSpec pSource() const { return {MosType::P, wp, lp, mp}; }
  MosSpec pCascode() const { return {MosType::P, wp, lp, mp}; }
  MosSpec nCascode() const { return {MosType::N, wn, ln, mn}; }
  MosSpec nMirror() const { return {MosType::N, wn, ln, mn}; }
  MosSpec tail() const { return {MosType::N, 2.0 * w1, l1, std::max(1, 2 * m1)}; }
};

/// Node capacitances the model needs beyond the load (from extraction, or
/// zero in the parasitic-blind flow).
struct Parasitics {
  double cOut = 0.0;   ///< extra capacitance at each output node [F]
  double cFold = 0.0;  ///< capacitance at each folding node [F]
};

struct OtaPerformance {
  double gainDb = 0.0;
  double gbwHz = 0.0;
  double pmDeg = 0.0;
  double srVps = 0.0;   ///< slew rate [V/s]
  double powerW = 0.0;
  bool saturated = true;  ///< all devices keep saturation headroom
};

/// Evaluates the OTA at the given design point and parasitics.
OtaPerformance evalFoldedCascode(const Technology& tech,
                                 const FoldedCascodeDesign& design,
                                 const Parasitics& parasitics);

/// Spec set of the Fig.-10 experiment (plus the geometric restrictions the
/// layout-aware flow adds).
struct OtaSpecs {
  double minGainDb = 72.0;
  double minGbwHz = 25e6;
  double minPmDeg = 60.0;
  double minSrVps = 20e6;   ///< 20 V/us
  double maxPowerW = 6e-3;
};

/// Sum of relative violations (0 when every spec is met).
double specViolation(const OtaPerformance& perf, const OtaSpecs& specs);

}  // namespace als
