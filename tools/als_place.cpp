// als_place — command-line floorplacer over the full engine/runtime stack.
//
// Feeds benchmark files (io/benchmark_format.h) or embedded corpus circuits
// (io/corpus.h) through the PlacementEngine facade and the PortfolioRunner:
// one backend's seed-split restart portfolio, or a whole-backend race, with
// the deterministic sweep-budget contract — a fixed (seed, sweeps,
// restarts) configuration gives bit-identical placements at any thread
// count, which `--smoke` turns into a CI gate.
//
// The scenario workloads ride on the same stack: `--thermal` adds the
// pair-mismatch objective term (needs Power annotations), `--shapes` enables
// the shape-selection move (needs shape curves / soft blocks), and `--size`
// runs the layout-aware Miller sizing flow with every candidate placed in
// parallel through the batch placer.
//
//   als_place --circuit apte --backend race --sweeps 1024 --restarts 16
//   als_place --circuit ami49 --backend seqpair --tempering
//   als_place my_design.alsbench --backend seqpair --json out.json
//   als_place --circuit ami33 --thermal 1.0 --shapes 0.2
//   als_place --size --backend seqpair --sweeps 256
//   als_place --smoke --json smoke.json       # CI: corpus x backends gate
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "engine/placement_engine.h"
#include "io/benchmark_format.h"
#include "io/corpus.h"
#include "layoutaware/placed_sizing.h"
#include "netlist/circuit.h"
#include "runtime/portfolio.h"
#include "runtime/thread_pool.h"
#include "util/bench_json.h"
#include "util/table.h"

namespace {

using namespace als;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [options] [file.alsbench ...]\n"
               "\n"
               "inputs\n"
               "  <file>             benchmark file in ALSBENCH format\n"
               "  --circuit <name>   embedded corpus circuit (or 'all'); see --list\n"
               "  --list             list the embedded corpus circuits and exit\n"
               "\n"
               "placement\n"
               "  --backend <name>   flat-bstar | seqpair | slicing | hbstar |\n"
               "                     race (all four race; default)\n"
               "  --sweeps <n>       total SA sweep budget (default 512)\n"
               "  --restarts <n>     seed-split restarts sharing the budget (default 8)\n"
               "  --threads <n>      worker threads, 0 = all hardware cores (default 0)\n"
               "  --seed <n>         base seed of the restart schedule (default 1)\n"
               "  --tempering        couple the restarts into a parallel-tempering\n"
               "                     ladder (same seeds and budget, exchanged states;\n"
               "                     still bit-identical at any thread count)\n"
               "  --exchange-interval <n>  sweeps between exchange rounds (default 4;\n"
               "                     0 together with --ladder-ratio 1 reproduces the\n"
               "                     independent restarts exactly)\n"
               "  --ladder-ratio <r> geometric t0 ratio between rungs (default 0.9;\n"
               "                     r < 1 makes the extra rungs colder)\n"
               "\n"
               "objective (unified weights, cost/objective.h recipe)\n"
               "  --wl <w>           wirelength weight (default 0.25)\n"
               "  --sym <w>          symmetry-deviation weight, penalty backends\n"
               "                     (default 2.0)\n"
               "  --prox <w>         proximity-violation weight, penalty backends\n"
               "                     (default 2.0)\n"
               "  --thermal <w>      thermal pair-mismatch weight (default 0; needs\n"
               "                     Power annotations to bite)\n"
               "  --shapes <p>       shape-selection move probability in [0,1]\n"
               "                     (default 0; needs shape curves / soft blocks)\n"
               "\n"
               "scenario\n"
               "  --size             layout-aware Miller sizing: size seed-scheduled\n"
               "                     candidates, place them in parallel (with the\n"
               "                     thermal/shape workloads), report the winner\n"
               "\n"
               "output\n"
               "  --art              ASCII rendering of each placement\n"
               "  --out <dir>        write <circuit>.place files into <dir>\n"
               "  --json <path>      machine-readable records (bench_json format)\n"
               "\n"
               "ci\n"
               "  --smoke            gate: every corpus circuit on all four backends,\n"
               "                     run twice and at 1 vs 8 threads; nonzero exit on\n"
               "                     any parse error, illegal placement or mismatch\n",
               argv0);
  return 2;
}

bool parseNum(const char* s, std::uint64_t* out) {
  if (*s < '0' || *s > '9') return false;  // strtoull accepts "-1"; we don't
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool parseWeight(const char* s, double* out) {
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s, &end);
  // Weights are dimensionless non-negative scale factors; reject the rest
  // (NaN/inf would silently poison every cost the run produces).
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  if (!(v >= 0.0) || v > 1e12) return false;
  *out = v;
  return true;
}

bool identicalResults(const EngineResult& a, const EngineResult& b) {
  if (a.cost != b.cost || a.area != b.area || a.hpwl != b.hpwl ||
      a.movesTried != b.movesTried || a.sweeps != b.sweeps ||
      a.restartsRun != b.restartsRun || a.bestRestart != b.bestRestart ||
      a.bestSeed != b.bestSeed || a.placement.size() != b.placement.size()) {
    return false;
  }
  for (std::size_t m = 0; m < a.placement.size(); ++m) {
    if (!(a.placement[m] == b.placement[m])) return false;
  }
  return true;
}

bool writePlacementFile(const std::string& path, const Circuit& c,
                        const EngineResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "als_place: cannot open '%s' for writing\n",
                 path.c_str());
    return false;
  }
  std::fprintf(f, "# als_place placement: %s\n", c.name().c_str());
  std::fprintf(f, "# cost %.17g  hpwl %lld  area %lld\n", r.cost,
               static_cast<long long>(r.hpwl), static_cast<long long>(r.area));
  for (std::size_t m = 0; m < r.placement.size(); ++m) {
    const Rect& rect = r.placement[m];
    std::fprintf(f, "%s %lld %lld %lld %lld\n", c.module(m).name.c_str(),
                 static_cast<long long>(rect.x), static_cast<long long>(rect.y),
                 static_cast<long long>(rect.w), static_cast<long long>(rect.h));
  }
  return std::fclose(f) == 0;
}

/// Spec set of the --size scenario: relaxed to what the two-stage Miller
/// topology can actually meet, so the flow demonstrates a passing run.
OtaSpecs millerSpecs() {
  OtaSpecs specs;
  specs.minGainDb = 70.0;
  specs.minGbwHz = 15e6;
  specs.minPmDeg = 55.0;
  specs.minSrVps = 10e6;
  return specs;
}

/// The --size scenario: layout-aware Miller sizing re-hosted on the runtime
/// layer (layoutaware/placed_sizing.h) — candidates sized on the portfolio
/// seed schedule, annotated, placed in parallel, one winner reduced out.
int runSize(BenchIo& io, EngineBackend backend, const EngineOptions& opt) {
  Technology tech = Technology::c035();
  PlacedSizingOptions popt;
  popt.sizing.layoutAware = true;
  popt.sizing.seed = opt.seed;
  popt.numCandidates = 4;
  popt.backend = backend;
  popt.placement = opt;
  PlacedSizingResult flow = runMillerPlacedSizing(tech, millerSpecs(), popt);

  const std::size_t threads = ThreadPool::resolveThreadCount(opt.numThreads);
  std::printf("als_place --size: %zu Miller candidates, backend=%s, "
              "sweeps=%zu, restarts=%zu, threads=%zu, thermal=%g, shapes=%g\n\n",
              flow.candidates.size(),
              std::string(backendName(backend)).c_str(), opt.maxSweeps,
              opt.numRestarts, threads, opt.thermalWeight, opt.shapeMoveProb);
  Table table({"candidate", "specs", "violation", "gain (dB)", "GBW (MHz)",
               "area (um^2)", "cost"});
  int failures = 0;
  for (std::size_t i = 0; i < flow.candidates.size(); ++i) {
    const PlacedSizingCandidate& cand = flow.candidates[i];
    if (!cand.placement.placement.isLegal()) {
      std::fprintf(stderr, "als_place: --size candidate %zu placed "
                           "ILLEGALLY\n", i);
      ++failures;
    }
    std::string tag = "miller#" + std::to_string(i);
    table.addRow({tag + (i == flow.bestIndex ? " *" : ""),
                  cand.sizing.meetsSpecsExtracted ? "met" : "not met",
                  Table::fmt(cand.sizing.violationExtracted, 3),
                  Table::fmt(cand.sizing.perfExtracted.gainDb, 1),
                  Table::fmt(cand.sizing.perfExtracted.gbwHz / 1e6, 1),
                  Table::fmt(static_cast<double>(cand.placement.area) * 1e-6),
                  Table::fmt(cand.placement.cost)});
    io.add(std::string(backendName(backend)) + "+size", tag, cand.placement,
           threads, &popt.placement);
  }
  table.print(std::cout);
  std::printf("\nwinner: candidate %zu (* above) in %.1fs total\n",
              flow.bestIndex, flow.seconds);
  return failures == 0 ? 0 : 1;
}

/// The CI gate behind --smoke: every corpus circuit, all four backends,
/// bit-identical across two runs and across 1 vs 8 threads — then the same
/// bar with the scenario workloads (thermal objective, shape moves,
/// parallel tempering, the --size flow) switched on.
int runSmoke(BenchIo& io) {
  EngineOptions opt;
  opt.maxSweeps = 96;
  opt.numRestarts = 4;
  opt.seed = 1;
  PortfolioRunner runner;
  Table table({"circuit", "blocks", "backend", "area/modarea", "HPWL (um)",
               "deterministic"});
  int failures = 0;
  for (CorpusCircuit which : allCorpusCircuits()) {
    ParseResult parsed = parseBenchmark(corpusText(which));
    if (!parsed.ok()) {
      std::fprintf(stderr, "als_place: corpus '%s' fails to parse: %s\n",
                   corpusName(which), parsed.error.c_str());
      ++failures;
      continue;
    }
    const Circuit& c = parsed.circuit;
    for (EngineBackend backend : allBackends()) {
      opt.numThreads = 1;
      EngineResult serial = runner.run(c, backend, opt);
      opt.numThreads = 8;
      EngineResult parallel = runner.run(c, backend, opt);
      EngineResult again = runner.run(c, backend, opt);
      bool deterministic = identicalResults(serial, parallel) &&
                           identicalResults(parallel, again);
      bool legal = serial.placement.isLegal() &&
                   serial.placement.size() == c.moduleCount();
      if (!deterministic || !legal) {
        std::fprintf(stderr,
                     "als_place: %s/%s %s\n", corpusName(which),
                     std::string(backendName(backend)).c_str(),
                     deterministic ? "produced an illegal placement"
                                   : "is NOT deterministic across runs/threads");
        ++failures;
      }
      table.addRow({corpusName(which), std::to_string(c.moduleCount()),
                    std::string(backendName(backend)),
                    Table::fmt(static_cast<double>(serial.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(serial.hpwl) / 1000.0, 1),
                    deterministic && legal ? "yes" : "NO"});
      io.add(std::string(backendName(backend)), corpusName(which), parallel, 8,
             &opt);
    }
  }
  // GSRC leg: the same determinism bar at 100 blocks, where flat-bstar's
  // partial repack and seqpair's incremental LCS (Auto resolves to Fenwick
  // here, Veb from n128) carry the decode — on a reduced sweep budget so
  // the smoke gate stays in seconds.
  {
    EngineOptions gopt = opt;
    gopt.maxSweeps = 24;
    gopt.numRestarts = 2;
    Circuit c = loadCorpusCircuit(CorpusCircuit::N100);
    for (EngineBackend backend : allBackends()) {
      gopt.numThreads = 1;
      EngineResult serial = runner.run(c, backend, gopt);
      gopt.numThreads = 8;
      EngineResult parallel = runner.run(c, backend, gopt);
      EngineResult again = runner.run(c, backend, gopt);
      bool deterministic = identicalResults(serial, parallel) &&
                           identicalResults(parallel, again);
      bool legal = serial.placement.isLegal() &&
                   serial.placement.size() == c.moduleCount();
      if (!deterministic || !legal) {
        std::fprintf(stderr, "als_place: n100/%s %s\n",
                     std::string(backendName(backend)).c_str(),
                     deterministic ? "produced an illegal placement"
                                   : "is NOT deterministic across runs/threads");
        ++failures;
      }
      table.addRow({"n100", std::to_string(c.moduleCount()),
                    std::string(backendName(backend)),
                    Table::fmt(static_cast<double>(serial.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(serial.hpwl) / 1000.0, 1),
                    deterministic && legal ? "yes" : "NO"});
      io.add(std::string(backendName(backend)), "n100", parallel, 8, &gopt);
    }
  }

  // Scenario leg: the same determinism bar with the thermal objective and
  // shape-selection moves enabled.  apte and ami33 carry Power annotations
  // and ami33 shape curves, so both new code paths actually execute.
  EngineOptions sopt = opt;
  sopt.thermalWeight = 1.0;
  sopt.shapeMoveProb = 0.2;
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33}) {
    Circuit c = loadCorpusCircuit(which);
    for (EngineBackend backend : allBackends()) {
      sopt.numThreads = 1;
      EngineResult serial = runner.run(c, backend, sopt);
      sopt.numThreads = 8;
      EngineResult parallel = runner.run(c, backend, sopt);
      bool deterministic = identicalResults(serial, parallel);
      bool legal = parallel.placement.isLegal();
      if (!deterministic || !legal) {
        std::fprintf(stderr, "als_place: %s/%s with thermal+shapes %s\n",
                     corpusName(which),
                     std::string(backendName(backend)).c_str(),
                     deterministic ? "produced an illegal placement"
                                   : "is NOT deterministic across threads");
        ++failures;
      }
      table.addRow({std::string(corpusName(which)) + "+tsh",
                    std::to_string(c.moduleCount()),
                    std::string(backendName(backend)),
                    Table::fmt(static_cast<double>(parallel.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(parallel.hpwl) / 1000.0, 1),
                    deterministic && legal ? "yes" : "NO"});
      io.add(std::string(backendName(backend)) + "+thermal", corpusName(which),
             parallel, 8, &sopt);
    }
  }

  // Tempering leg: the coupled-replica runs clear the same bar — bit-
  // identical across two runs and across 1 vs 8 threads on every backend —
  // and the degenerate knobs (exchangeInterval=0, ladderRatio=1.0) must
  // reproduce the independent-restart portfolio exactly.
  EngineOptions topt = opt;
  topt.tempering = true;
  topt.exchangeInterval = 2;
  topt.ladderRatio = 1.5;
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33}) {
    Circuit c = loadCorpusCircuit(which);
    for (EngineBackend backend : allBackends()) {
      topt.numThreads = 1;
      EngineResult serial = runner.run(c, backend, topt);
      topt.numThreads = 8;
      EngineResult parallel = runner.run(c, backend, topt);
      EngineResult again = runner.run(c, backend, topt);
      bool deterministic = identicalResults(serial, parallel) &&
                           identicalResults(parallel, again);
      EngineOptions degen = opt;
      degen.tempering = true;
      degen.exchangeInterval = 0;
      degen.ladderRatio = 1.0;
      degen.numThreads = 8;
      EngineOptions plain = opt;
      plain.numThreads = 8;
      bool degenerates = identicalResults(runner.run(c, backend, degen),
                                          runner.run(c, backend, plain));
      bool legal = parallel.placement.isLegal();
      if (!deterministic || !degenerates || !legal) {
        std::fprintf(stderr, "als_place: %s/%s tempering %s\n",
                     corpusName(which),
                     std::string(backendName(backend)).c_str(),
                     !legal ? "produced an illegal placement"
                     : !deterministic
                         ? "is NOT deterministic across runs/threads"
                         : "with degenerate knobs does NOT reproduce the "
                           "restart portfolio");
        ++failures;
      }
      table.addRow({std::string(corpusName(which)) + "+pt",
                    std::to_string(c.moduleCount()),
                    std::string(backendName(backend)),
                    Table::fmt(static_cast<double>(parallel.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(parallel.hpwl) / 1000.0, 1),
                    deterministic && degenerates && legal ? "yes" : "NO"});
      io.add(std::string(backendName(backend)) + "+pt", corpusName(which),
             parallel, 8, &topt);
    }
  }

  // --size flow leg: the whole sizing-on-portfolio pipeline must reduce to
  // a bit-identical winner at 1 vs 8 placement threads.
  {
    Technology tech = Technology::c035();
    PlacedSizingOptions popt;
    popt.sizing.layoutAware = true;
    popt.sizing.seed = 1;
    popt.numCandidates = 3;
    popt.placement = opt;
    popt.placement.thermalWeight = 1.0;
    popt.placement.shapeMoveProb = 0.2;
    popt.placement.numThreads = 1;
    PlacedSizingResult serial = runMillerPlacedSizing(tech, millerSpecs(), popt);
    popt.placement.numThreads = 8;
    PlacedSizingResult parallel =
        runMillerPlacedSizing(tech, millerSpecs(), popt);
    bool deterministic = serial.bestIndex == parallel.bestIndex;
    for (std::size_t i = 0; i < serial.candidates.size(); ++i) {
      deterministic = deterministic &&
                      identicalResults(serial.candidates[i].placement,
                                       parallel.candidates[i].placement);
    }
    if (!deterministic) {
      std::fprintf(stderr, "als_place: --size flow is NOT deterministic "
                           "across placement thread counts\n");
      ++failures;
    }
    const PlacedSizingCandidate& best = parallel.best();
    table.addRow({"miller --size", std::to_string(best.circuit.moduleCount()),
                  std::string(backendName(popt.backend)),
                  Table::fmt(static_cast<double>(best.placement.area) /
                             static_cast<double>(best.circuit.totalModuleArea())),
                  Table::fmt(static_cast<double>(best.placement.hpwl) / 1000.0, 1),
                  deterministic ? "yes" : "NO"});
  }

  table.print(std::cout);
  std::printf("\nsmoke gate: %s (every row bit-compared across runs and "
              "1 vs 8 threads; scenario legs run thermal + shape workloads;\n"
              "+pt rows run parallel tempering and check the degenerate knobs "
              "reproduce the restarts)\n",
              failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);  // owns --json / --smoke

  std::vector<std::pair<std::string, Circuit>> inputs;  // (source, circuit)
  std::string backendArg = "race";
  std::string outDir;
  EngineOptions opt;
  opt.maxSweeps = 512;
  opt.numRestarts = 8;
  opt.numThreads = 0;
  opt.seed = 1;
  bool art = false, smoke = false, size = false;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--list") {
      auto printRow = [](CorpusCircuit which) {
        Circuit c = loadCorpusCircuit(which);
        std::printf("%-8s %3zu blocks, %zu nets, %zu symmetry group(s)\n",
                    corpusName(which), c.moduleCount(), c.nets().size(),
                    c.symmetryGroups().size());
      };
      for (CorpusCircuit which : allCorpusCircuits()) printRow(which);
      for (CorpusCircuit which : largeCorpusCircuits()) printRow(which);
      return 0;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--art") {
      art = true;
    } else if (arg == "--json") {
      ++i;  // value consumed by BenchIo
    } else if (arg == "--backend") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      backendArg = v;
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      outDir = v;
    } else if (arg == "--sweeps") {
      const char* v = value();
      if (!v || !parseNum(v, &n)) return usage(argv[0]);
      opt.maxSweeps = static_cast<std::size_t>(n);
    } else if (arg == "--restarts") {
      const char* v = value();
      // An uncapped-budget portfolio allocates one slice per restart; keep a
      // typo from becoming an allocation bomb.
      if (!v || !parseNum(v, &n) || n > 1'000'000) return usage(argv[0]);
      opt.numRestarts = static_cast<std::size_t>(n);
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v || !parseNum(v, &n) || n > 1024) return usage(argv[0]);
      opt.numThreads = static_cast<std::size_t>(n);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v || !parseNum(v, &n)) return usage(argv[0]);
      opt.seed = n;
    } else if (arg == "--tempering") {
      opt.tempering = true;
    } else if (arg == "--exchange-interval") {
      const char* v = value();
      if (!v || !parseNum(v, &n)) return usage(argv[0]);
      opt.exchangeInterval = static_cast<std::size_t>(n);
    } else if (arg == "--ladder-ratio") {
      const char* v = value();
      // A temperature ratio: must be strictly positive (parseWeight allows
      // 0, which would zero every rung above the first).
      if (!v || !parseWeight(v, &opt.ladderRatio) || opt.ladderRatio <= 0.0) {
        return usage(argv[0]);
      }
    } else if (arg == "--wl") {
      const char* v = value();
      if (!v || !parseWeight(v, &opt.wirelengthWeight)) return usage(argv[0]);
    } else if (arg == "--sym") {
      const char* v = value();
      if (!v || !parseWeight(v, &opt.symmetryWeight)) return usage(argv[0]);
    } else if (arg == "--prox") {
      const char* v = value();
      if (!v || !parseWeight(v, &opt.proximityWeight)) return usage(argv[0]);
    } else if (arg == "--thermal") {
      const char* v = value();
      if (!v || !parseWeight(v, &opt.thermalWeight)) return usage(argv[0]);
    } else if (arg == "--shapes") {
      const char* v = value();
      // A probability, not a weight: anything above 1 silently means "every
      // move is a shape move", which is never what a typo intended.
      if (!v || !parseWeight(v, &opt.shapeMoveProb) || opt.shapeMoveProb > 1.0) {
        return usage(argv[0]);
      }
    } else if (arg == "--size") {
      size = true;
    } else if (arg == "--circuit") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      if (std::string_view(v) == "all") {
        for (CorpusCircuit which : allCorpusCircuits()) {
          inputs.emplace_back(corpusName(which), loadCorpusCircuit(which));
        }
      } else {
        CorpusCircuit which;
        if (!corpusByName(v, &which)) {
          std::fprintf(stderr, "als_place: unknown corpus circuit '%s' "
                               "(try --list)\n", v);
          return 2;
        }
        inputs.emplace_back(v, loadCorpusCircuit(which));
      }
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "als_place: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    } else {
      ParseResult parsed = parseBenchmarkFile(argv[i]);
      if (!parsed.ok()) {
        std::fprintf(stderr, "als_place: %s: %s\n", argv[i],
                     parsed.error.c_str());
        return 1;
      }
      inputs.emplace_back(argv[i], std::move(parsed.circuit));
    }
  }

  if (smoke) return runSmoke(io);

  bool race = backendArg == "race";
  EngineBackend backend = EngineBackend::SeqPair;
  if (!race) {
    bool found = false;
    for (EngineBackend b : allBackends()) {
      if (backendName(b) == backendArg) {
        backend = b;
        found = true;
      }
    }
    if (!found) {
      std::fprintf(stderr, "als_place: unknown backend '%s'\n",
                   backendArg.c_str());
      return 2;
    }
  }

  // --size is a scenario, not a per-file placement: candidates come from the
  // sizing loop (racing backends per candidate would multiply the grid, so
  // the race default falls back to the symmetric-exact seqpair backend).
  if (size) return runSize(io, backend, opt);
  if (inputs.empty()) return usage(argv[0]);

  const std::size_t threads = ThreadPool::resolveThreadCount(opt.numThreads);
  std::printf("als_place: %zu circuit(s), backend=%s, sweeps=%zu, "
              "restarts=%zu, threads=%zu, seed=%llu, "
              "weights wl=%g sym=%g prox=%g\n\n",
              inputs.size(), race ? "race" : std::string(backendName(backend)).c_str(),
              opt.maxSweeps, opt.numRestarts, threads,
              static_cast<unsigned long long>(opt.seed),
              opt.wirelengthWeight, opt.symmetryWeight, opt.proximityWeight);

  PortfolioRunner runner;
  Table table({"circuit", "blocks", "backend", "area/modarea", "HPWL (um)",
               "best restart", "time (s)"});
  int failures = 0;
  for (auto& [source, circuit] : inputs) {
    EngineResult result;
    std::string winner;
    if (race) {
      PortfolioRunner::RaceOutcome outcome =
          runner.race(circuit, allBackends(), opt);
      result = std::move(outcome.result);
      winner = std::string(backendName(outcome.backend));
    } else {
      result = runner.run(circuit, backend, opt);
      winner = std::string(backendName(backend));
    }
    if (!result.placement.isLegal()) {
      std::fprintf(stderr, "als_place: %s: backend produced an ILLEGAL "
                           "placement\n", source.c_str());
      ++failures;
    }
    table.addRow({circuit.name(), std::to_string(circuit.moduleCount()), winner,
                  Table::fmt(static_cast<double>(result.area) /
                             static_cast<double>(circuit.totalModuleArea())),
                  Table::fmt(static_cast<double>(result.hpwl) / 1000.0, 1),
                  std::to_string(result.bestRestart),
                  Table::fmt(result.seconds, 2)});
    io.add(winner, circuit.name(), result, threads, &opt);
    if (art) {
      std::cout << asciiArt(result.placement, circuit.moduleNames()) << "\n";
    }
    if (!outDir.empty()) {
      std::string path = outDir + "/" + circuit.name() + ".place";
      if (!writePlacementFile(path, circuit, result)) ++failures;
    }
  }
  table.print(std::cout);
  return failures == 0 ? 0 : 1;
}
