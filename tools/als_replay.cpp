// als_replay — load driver and acceptance harness for the als_serve daemon.
//
// Fires corpus jobs at a running daemon (or one it spawns itself with
// --serve-bin, the hermetic CI mode) over the ALSSERVE 1 protocol
// (io/serve_protocol.h) and measures what the serve layer promises:
//
//   identity    the same unique job set at 1 client and at N concurrent
//               clients (cache flushed in between, so both rounds COMPUTE)
//               must produce bit-identical per-job results — and, with
//               --check, identical to an in-process PortfolioRunner run of
//               the same options in THIS process (the wire path adds
//               nothing and loses nothing).
//   throughput  a duplicate-laden job stream at configurable concurrency:
//               client-observed latency percentiles, jobs/sec, and the
//               cache hit rate lifted from STATS deltas.
//   warm/cold   one cold ami49 compute, then the same key resubmitted:
//               the warm hit must be >= 50x faster (--check) and byte-
//               identical to the cold payload.
//   cancel      a long job cancelled mid-run must deliver its RESULT
//               within a bounded number of progress rounds, and the worker
//               that absorbed the cancel must then complete a fresh job
//               bit-identical to an unperturbed process (the in-process
//               oracle again).
//
// Clients honor REJECTED backpressure with seeded, deterministic
// exponential backoff + jitter (runWithRetry) — the retry SCHEDULE is a
// pure function of the per-client seed, so a loaded run is reproducible.
//
// `--faults` switches to the CHAOS HARNESS instead of the phases above: it
// corrupts/truncates store files between daemon generations, arms
// util/fault_injection.h specs (ENOSPC, torn renames, crash points), kills
// and restarts the daemon mid-write, and drives deadline and backpressure
// paths — asserting throughout that every completed job stays byte-
// identical to the in-process oracle, corrupt entries are quarantined and
// never served, the store honors its size cap, and deadline-expired jobs
// report `deadline` within one progress round.
//
// Results go to stdout and, with --json, as bench_json records next to the
// other bench-smoke captures: per-circuit quality rows (deterministic
// cost/hpwl/area under the "serve-<backend>" name; seconds deliberately 0,
// so the throughput gate treats them as presence+quality only) and
// "serve-meta" rows whose `seconds` field carries the measured metric
// (latency percentiles, jobs/sec, hit rate, warm speedup, cancel ack
// rounds; cost 0 keeps them out of the quality gate — wall-clock metrics
// are machine facts, not regressions).
//
//   als_replay --serve-bin ./build/als_serve --check --clients 8
//              [--json build/bench-smoke/bench_serve.json]
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/placement_engine.h"
#include "io/benchmark_format.h"
#include "io/corpus.h"
#include "io/serve_protocol.h"
#include "runtime/portfolio.h"
#include "runtime/serve.h"  // ServeStats (the STATS reply's shape)
#include "util/bench_json.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {

using namespace als;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket <path> | --serve-bin <als_serve>) [options]\n"
               "daemon (with --serve-bin the daemon is spawned and shut down "
               "by this tool)\n"
               "  --workers <n>          daemon worker threads (default 2)\n"
               "  --queue <n>            daemon job slots (default 64)\n"
               "  --progress-interval <n> sweeps between PROGRESS (default 16)\n"
               "workload\n"
               "  --circuits <a,b,..>    corpus circuits (default apte,ami33)\n"
               "  --backend <name>       engine backend (default seqpair)\n"
               "  --sweeps <n>           per-job sweep budget (default 64)\n"
               "  --restarts <n>         per-job restarts (default 4)\n"
               "  --jobs <n>             throughput-phase jobs (default 24)\n"
               "  --clients <n>          throughput-phase connections (default 4)\n"
               "  --identity-clients <n> concurrent round of the identity phase\n"
               "                         (default 8)\n"
               "  --dup-ratio <r>        duplicate fraction in [0,1) (default 0.5)\n"
               "  --warm-circuit <name>  warm/cold + cancel circuit (default ami49)\n"
               "  --warm-sweeps <n>      warm/cold sweep budget (default 256)\n"
               "  --cancel-sweeps <n>    budget of the to-be-cancelled job\n"
               "                         (default 200000)\n"
               "checks / output\n"
               "  --check                enforce the acceptance gates (identity,\n"
               "                         >=50x warm speedup, cancel ack bound,\n"
               "                         in-process oracle); nonzero exit on any\n"
               "                         violation\n"
               "  --faults               run the chaos harness instead of the\n"
               "                         standard phases (requires --serve-bin):\n"
               "                         store corruption, fault-injected ENOSPC\n"
               "                         and torn renames, daemon crash/restart,\n"
               "                         deadlines, backpressure retry\n"
               "  --json <path>          bench_json records\n",
               argv0);
  return 2;
}

bool parseNum(const char* s, std::uint64_t* out) {
  if (*s < '0' || *s > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

// --- wire client ------------------------------------------------------------

bool sendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

class Reader {
 public:
  explicit Reader(int fd) : fd_(fd) {}
  bool readLine(std::string& line) {
    line.clear();
    for (;;) {
      std::size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line.assign(buffer_, pos_, nl - pos_);
        pos_ = nl + 1;
        compact();
        return true;
      }
      if (!fill()) return false;
    }
  }
  bool readExact(std::size_t n, std::string& out) {
    out.clear();
    while (buffer_.size() - pos_ < n) {
      if (!fill()) return false;
    }
    out.assign(buffer_, pos_, n);
    pos_ += n;
    compact();
    return true;
  }

 private:
  bool fill() {
    char chunk[65536];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);  // a signal is not an EOF
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
  void compact() {
    if (pos_ > (1u << 20)) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }
  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

std::string_view nextToken(std::string_view& rest) {
  std::size_t a = rest.find_first_not_of(" \t");
  if (a == std::string_view::npos) {
    rest = {};
    return {};
  }
  std::size_t b = rest.find_first_of(" \t", a);
  std::string_view token = rest.substr(
      a, b == std::string_view::npos ? std::string_view::npos : b - a);
  rest = b == std::string_view::npos ? std::string_view{} : rest.substr(b);
  return token;
}

/// One job as the replay harness describes it (circuit by corpus name; the
/// raw text is what goes on the wire and into the cache key).
struct JobSpec {
  std::string circuit;
  std::string_view text;
  std::uint64_t seed = 1;
  std::size_t sweeps = 64;
  std::size_t restarts = 4;
  std::size_t deadlineMs = 0;      ///< OPT deadline-ms when > 0
  std::size_t deadlineSweeps = 0;  ///< OPT deadline-sweeps when > 0
};

struct WireOutcome {
  bool ok = false;          ///< RESULT received and well-formed
  bool rejected = false;
  std::string status;       ///< hit | miss | cancelled | deadline
  std::string keyHex;
  std::string payload;      ///< ALSRESULT text
  std::string error;
  std::size_t progressTotal = 0;
  std::size_t progressAfterCancel = 0;
  std::size_t attempts = 1;  ///< submissions incl. REJECTED retries
  double latencySec = 0.0;  ///< JOB sent -> DONE received
};

/// Synchronous client: one connection, one job in flight at a time (load
/// comes from running many clients, mirroring the serve scheduling model).
class ServeClient {
 public:
  bool connect(const std::string& socketPath) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.size() >= sizeof addr.sun_path) return false;
    std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
      ::close(fd_);
      fd_ = -1;
      return false;
    }
    reader_ = std::make_unique<Reader>(fd_);
    return true;
  }
  ~ServeClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Runs one job to completion.  `cancelAfterRounds` > 0 sends CANCEL once
  /// that many PROGRESS lines have arrived.
  WireOutcome run(const JobSpec& job, std::string_view backendName,
                  std::size_t cancelAfterRounds = 0) {
    WireOutcome out;
    std::string tag = "j" + std::to_string(nextTag_++);
    std::string msg = "JOB " + tag + " " + std::string(backendName) + "\n";
    msg += "OPT sweeps " + std::to_string(job.sweeps) + "\n";
    msg += "OPT restarts " + std::to_string(job.restarts) + "\n";
    msg += "OPT seed " + std::to_string(job.seed) + "\n";
    if (job.deadlineMs > 0) {
      msg += "OPT deadline-ms " + std::to_string(job.deadlineMs) + "\n";
    }
    if (job.deadlineSweeps > 0) {
      msg += "OPT deadline-sweeps " + std::to_string(job.deadlineSweeps) + "\n";
    }
    msg += "CIRCUIT " + std::to_string(job.text.size()) + "\n";
    msg += job.text;
    msg += "END\n";
    Stopwatch clock;
    if (!sendAll(fd_, msg)) {
      out.error = "write failed";
      return out;
    }
    bool cancelSent = false;
    std::string line;
    while (reader_->readLine(line)) {
      std::string_view rest = line;
      std::string_view word = nextToken(rest);
      if (word == "QUEUED") {
        nextToken(rest);  // tag
        out.keyHex = std::string(nextToken(rest));
      } else if (word == "REJECTED") {
        out.rejected = true;
        return out;
      } else if (word == "ERROR") {
        nextToken(rest);  // tag
        out.error = std::string(rest);
        return out;
      } else if (word == "PROGRESS") {
        ++out.progressTotal;
        if (cancelSent) ++out.progressAfterCancel;
        if (cancelAfterRounds > 0 && !cancelSent &&
            out.progressTotal >= cancelAfterRounds) {
          if (!sendAll(fd_, "CANCEL " + tag + "\n")) {
            out.error = "cancel write failed";
            return out;
          }
          cancelSent = true;
        }
      } else if (word == "RESULT") {
        nextToken(rest);  // tag
        out.status = std::string(nextToken(rest));
        std::uint64_t nbytes = 0;
        std::string count(nextToken(rest));
        if (!parseNum(count.c_str(), &nbytes) ||
            !reader_->readExact(static_cast<std::size_t>(nbytes),
                                out.payload) ||
            !reader_->readLine(line)) {  // DONE <tag>
          out.error = "truncated RESULT";
          return out;
        }
        out.latencySec = clock.seconds();
        out.ok = true;
        return out;
      }
    }
    out.error = "connection closed mid-job";
    return out;
  }

  bool stats(ServeStats& out) {
    if (!sendAll(fd_, "STATS\n")) return false;
    std::string line;
    if (!reader_->readLine(line)) return false;
    std::uint64_t v[10] = {};
    std::string_view rest = line;
    if (nextToken(rest) != "STATS") return false;
    for (std::uint64_t& slot : v) {
      std::string word(nextToken(rest));
      if (!parseNum(word.c_str(), &slot)) return false;
    }
    out = {};
    out.submitted = v[0];
    out.completed = v[1];
    out.cacheHits = v[2];
    out.cacheMisses = v[3];
    out.cancelled = v[4];
    out.rejected = v[5];
    out.deadlineExpired = v[6];
    out.quarantined = v[7];
    out.evicted = v[8];
    out.memoryOnly = v[9] != 0;
    return true;
  }

  bool flush() {
    if (!sendAll(fd_, "FLUSH\n")) return false;
    std::string line;
    return reader_->readLine(line) && line == "FLUSHED";
  }

  bool shutdownDaemon() {
    if (!sendAll(fd_, "SHUTDOWN\n")) return false;
    std::string line;
    return reader_->readLine(line) && line == "BYE";
  }

 private:
  int fd_ = -1;
  std::unique_ptr<Reader> reader_;
  std::uint64_t nextTag_ = 1;
};

// --- helpers ----------------------------------------------------------------

/// Backpressure-honoring submit: on REJECTED, sleep a seeded exponential
/// backoff with jitter and resubmit.  The schedule (5ms base, x2 per
/// attempt, 200ms cap, jitter in [0.5, 1.0) of the step) is a pure function
/// of `rng`'s seed — a loaded run retries identically every time.  Any
/// non-REJECTED outcome returns immediately with `attempts` filled in.
WireOutcome runWithRetry(ServeClient& client, const JobSpec& job,
                         std::string_view backendName, Rng& rng,
                         std::size_t maxAttempts = 100,
                         std::size_t cancelAfterRounds = 0) {
  double backoff = 0.005;
  for (std::size_t attempt = 1;; ++attempt) {
    WireOutcome out = client.run(job, backendName, cancelAfterRounds);
    out.attempts = attempt;
    if (!out.rejected || attempt >= maxAttempts) return out;
    const double jitter = 0.5 + 0.5 * rng.uniform();
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff * jitter));
    backoff = std::min(backoff * 2.0, 0.2);
  }
}

/// Connects with a bounded retry loop — the probe for a daemon that was
/// just spawned (or respawned after a chaos kill) and is still binding.
bool connectRetry(ServeClient& client, const std::string& socketPath,
                  int attempts = 200) {
  for (int i = 0; i < attempts; ++i) {
    if (client.connect(socketPath)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  return false;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  std::size_t idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// The in-process oracle: what an unperturbed process computes for this job
/// (PortfolioRunner on the serve layer's forced knobs), digested over the
/// same ALSRESULT text the daemon sends.
std::uint64_t oracleDigest(const JobSpec& job, EngineBackend backend) {
  ParseResult parsed = parseBenchmark(job.text);
  if (!parsed.ok()) return 0;
  EngineOptions opt;
  opt.maxSweeps = job.sweeps;
  opt.numRestarts = job.restarts;
  opt.seed = job.seed;
  opt.timeLimitSec = 0.0;
  opt.numThreads = 1;
  PortfolioRunner runner;
  EngineResult result = runner.run(parsed.circuit, backend, opt);
  std::string text;
  writeResultText(backend, result, text);
  return fnv1a64(text);
}

struct PhaseJobResult {
  std::size_t jobIndex = 0;
  WireOutcome outcome;
};

/// Runs `jobList` round-robin across `clients` synchronous connections and
/// returns every outcome (indexed like jobList).
std::vector<PhaseJobResult> runPhase(const std::string& socketPath,
                                     const std::vector<JobSpec>& jobList,
                                     std::string_view backendName,
                                     std::size_t clients) {
  clients = std::max<std::size_t>(1, std::min(clients, jobList.size()));
  std::vector<PhaseJobResult> results(jobList.size());
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      ServeClient client;
      if (!client.connect(socketPath)) {
        for (std::size_t i = c; i < jobList.size(); i += clients) {
          results[i].outcome.error = "connect failed";
        }
        return;
      }
      // Seeded per client: the retry schedule under backpressure is as
      // reproducible as the jobs themselves.
      Rng rng(0xC0FFEEull + c);
      for (std::size_t i = c; i < jobList.size(); i += clients) {
        results[i].jobIndex = i;
        results[i].outcome = runWithRetry(client, jobList[i], backendName, rng);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

pid_t spawnDaemon(const std::string& bin, const std::string& socketPath,
                  const std::string& cacheDir, std::size_t workers,
                  std::size_t queue, std::size_t progressInterval,
                  std::size_t cacheCap = 0, const std::string& faults = {}) {
  std::vector<std::string> args = {
      bin,           "--socket",
      socketPath,    "--workers",
      std::to_string(workers), "--queue",
      std::to_string(queue),   "--progress-interval",
      std::to_string(progressInterval)};
  if (!cacheDir.empty()) {
    args.push_back("--cache-dir");
    args.push_back(cacheDir);
  }
  if (cacheCap > 0) {
    args.push_back("--cache-cap");
    args.push_back(std::to_string(cacheCap));
  }
  if (!faults.empty()) {
    args.push_back("--faults");
    args.push_back(faults);
  }
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argvp;
  argvp.reserve(args.size() + 1);
  for (std::string& a : args) argvp.push_back(a.data());
  argvp.push_back(nullptr);
  ::execv(bin.c_str(), argvp.data());
  std::perror("als_replay: execv");
  ::_exit(127);
}

// --- chaos harness (--faults) -----------------------------------------------

bool readFile(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  char chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) out.append(chunk, n);
  std::fclose(f);
  return true;
}

bool writeFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

std::size_t countFiles(const std::string& dir, const char* ext) {
  std::error_code ec;
  std::size_t n = 0;
  std::filesystem::directory_iterator it(dir, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() == ext) ++n;
  }
  return n;
}

/// The chaos harness: every failure mode the stack claims to survive,
/// driven for real — file corruption between daemon generations, injected
/// ENOSPC and crash points, SIGKILL mid-job, deadlines, backpressure — with
/// the acceptance bar that completed results stay byte-identical to the
/// in-process oracle and corrupt bytes are never served.
int runChaosHarness(const std::string& serveBin, EngineBackend backend,
                    const std::string& backendStr, bool check) {
  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "als_replay: FAIL %s\n", what.c_str());
    ++failures;
  };

  char tmpl[] = "/tmp/als_chaos.XXXXXX";
  const char* made = ::mkdtemp(tmpl);
  if (made == nullptr) {
    std::perror("als_replay: mkdtemp");
    return 1;
  }
  const std::string tmpDir = made;
  const std::string socketPath = tmpDir + "/als.sock";

  CorpusCircuit which;
  if (!corpusByName("apte", &which)) return 1;
  const std::string_view apte = corpusText(which);
  if (!corpusByName("ami33", &which)) return 1;
  const std::string_view ami33 = corpusText(which);

  auto start = [&](const std::string& cacheDir, std::size_t workers,
                   std::size_t queue, std::size_t cap,
                   const std::string& faults, ServeClient& client) -> pid_t {
    pid_t pid = spawnDaemon(serveBin, socketPath, cacheDir, workers, queue,
                            /*progressInterval=*/16, cap, faults);
    if (pid < 0 || !connectRetry(client, socketPath)) {
      fail("chaos: cannot spawn/connect daemon");
      if (pid > 0) ::kill(pid, SIGKILL);
      return -1;
    }
    return pid;
  };
  auto stopClean = [&](ServeClient& client, pid_t pid, const char* what) {
    if (!client.shutdownDaemon()) {
      fail(std::string(what) + ": SHUTDOWN not acknowledged");
    }
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      fail(std::string(what) + ": daemon did not exit cleanly");
    }
  };
  auto waitCrash = [&](pid_t pid, const char* what) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) {
      fail(std::string(what) + ": waitpid failed");
      return;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      fail(std::string(what) + ": daemon exited cleanly, crash expected");
    }
  };
  auto oracleCheck = [&](const JobSpec& job, const WireOutcome& out,
                         const char* what) {
    if (check && fnv1a64(out.payload) != oracleDigest(job, backend)) {
      fail(std::string(what) + ": served result differs from the in-process "
                               "oracle");
    }
  };

  // --- phase A: store corruption between daemon generations ----------------
  // Populate 5 entries, shut down, damage 3 of them on disk (bit flip,
  // truncation, foreign content under the wrong key) plus an orphan .tmp,
  // restart: the scrub must quarantine exactly the damaged entries, the
  // damaged keys recompute bit-identically, the intact ones still hit.
  {
    const std::string cacheDir = tmpDir + "/cache-a";
    ServeClient c1;
    pid_t pid = start(cacheDir, 2, 16, 0, "", c1);
    if (pid > 0) {
      std::vector<JobSpec> jobs;
      for (std::uint64_t s = 1; s <= 5; ++s) {
        jobs.push_back({"apte", apte, s, 64, 2});
      }
      std::vector<std::string> keys(jobs.size()), payloads(jobs.size());
      Rng rng(1);
      bool populated = true;
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        WireOutcome out = runWithRetry(c1, jobs[i], backendStr, rng);
        if (!out.ok || out.status != "miss") {
          fail("chaos-A: populate job " + std::to_string(i) + " failed");
          populated = false;
          continue;
        }
        keys[i] = out.keyHex;
        payloads[i] = out.payload;
        oracleCheck(jobs[i], out, "chaos-A populate");
      }
      stopClean(c1, pid, "chaos-A populate");

      if (populated) {
        auto entry = [&](std::size_t i) {
          return cacheDir + "/" + keys[i] + ".alsresult";
        };
        std::string bytes;
        // keys[0]: one flipped bit mid-file.
        if (!readFile(entry(0), bytes)) fail("chaos-A: read entry 0");
        bytes[bytes.size() / 2] ^= 0x20;
        writeFile(entry(0), bytes);
        // keys[1]: truncated to 60%.
        if (!readFile(entry(1), bytes)) fail("chaos-A: read entry 1");
        writeFile(entry(1), std::string_view(bytes).substr(0, bytes.size() * 3 / 5));
        // keys[3]: keys[2]'s (valid!) content under keys[3]'s name — the
        // foreign-file case only the Key line can catch.
        if (!readFile(entry(2), bytes)) fail("chaos-A: read entry 2");
        writeFile(entry(3), bytes);
        // Plus an orphaned temp file from a pretend crash.
        writeFile(entry(4) + ".tmp", "torn half-written entry");

        ServeClient c2;
        pid = start(cacheDir, 2, 16, 0, "", c2);
        if (pid > 0) {
          ServeStats s{};
          if (!c2.stats(s)) fail("chaos-A: STATS after restart");
          if (s.quarantined < 3) {
            fail("chaos-A: scrub quarantined " +
                 std::to_string(s.quarantined) + " entries, expected >= 3");
          }
          if (std::filesystem::exists(entry(4) + ".tmp")) {
            fail("chaos-A: orphan .tmp survived the startup scrub");
          }
          const char* expect[5] = {"miss", "miss", "hit", "miss", "hit"};
          for (std::size_t i = 0; i < jobs.size(); ++i) {
            WireOutcome out = c2.run(jobs[i], backendStr);
            if (!out.ok || out.status != expect[i]) {
              fail("chaos-A: post-damage job " + std::to_string(i) +
                   " status '" + (out.ok ? out.status : out.error) +
                   "', expected '" + expect[i] + "'");
            } else if (out.payload != payloads[i]) {
              fail("chaos-A: post-damage job " + std::to_string(i) +
                   " payload not byte-identical to the original");
            }
          }
          stopClean(c2, pid, "chaos-A recovery");
          std::printf("chaos-A corruption: 3 damaged + 1 torn .tmp -> "
                      "%llu quarantined, recomputes byte-identical\n",
                      static_cast<unsigned long long>(s.quarantined));
        }
      }
    }
  }

  // --- phase B: ENOSPC degradation ------------------------------------------
  // Every disk write fails: results must still flow (computed, correct),
  // the daemon must surface memory-only degradation, resubmits must hit
  // from memory, and nothing may land on disk.
  {
    const std::string cacheDir = tmpDir + "/cache-b";
    ServeClient c;
    pid_t pid = start(cacheDir, 2, 16, 0, "write-fail@1+", c);
    if (pid > 0) {
      std::vector<JobSpec> jobs;
      for (std::uint64_t s = 11; s <= 14; ++s) {
        jobs.push_back({"apte", apte, s, 64, 2});
      }
      std::vector<std::string> payloads(jobs.size());
      Rng rng(2);
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        WireOutcome out = runWithRetry(c, jobs[i], backendStr, rng);
        if (!out.ok || out.status != "miss") {
          fail("chaos-B: job " + std::to_string(i) + " failed under ENOSPC");
          continue;
        }
        payloads[i] = out.payload;
        oracleCheck(jobs[i], out, "chaos-B");
      }
      ServeStats s{};
      if (!c.stats(s)) fail("chaos-B: STATS");
      if (!s.memoryOnly) {
        fail("chaos-B: daemon not memory-only after persistent write "
             "failures");
      }
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        WireOutcome out = c.run(jobs[i], backendStr);
        if (!out.ok || out.status != "hit" || out.payload != payloads[i]) {
          fail("chaos-B: resubmit " + std::to_string(i) +
               " not a byte-identical memory hit");
        }
      }
      if (countFiles(cacheDir, ".alsresult") != 0) {
        fail("chaos-B: entries landed on disk despite injected ENOSPC");
      }
      stopClean(c, pid, "chaos-B");
      std::printf("chaos-B ENOSPC: %zu jobs computed memory-only, "
                  "degradation surfaced, 0 files on disk\n",
                  jobs.size());
    }
  }

  // --- phase C: crash recovery ----------------------------------------------
  {
    // C1: die between temp-file write and rename — the classic torn-rename
    // window.  The orphan .tmp must be scrubbed, the lost job recomputed.
    const std::string cacheDir = tmpDir + "/cache-c1";
    ServeClient c;
    pid_t pid = start(cacheDir, 1, 16, 0, "crash@store-after-write:2", c);
    if (pid > 0) {
      JobSpec j1{"apte", apte, 21, 64, 2}, j2{"apte", apte, 22, 64, 2};
      WireOutcome out1 = c.run(j1, backendStr);
      if (!out1.ok || out1.status != "miss") fail("chaos-C1: first job");
      WireOutcome out2 = c.run(j2, backendStr);
      if (out2.ok) {
        fail("chaos-C1: second job completed, crash-at-store expected");
      }
      waitCrash(pid, "chaos-C1");
      ServeClient c2;
      pid = start(cacheDir, 1, 16, 0, "", c2);
      if (pid > 0) {
        if (countFiles(cacheDir, ".tmp") != 0) {
          fail("chaos-C1: torn .tmp survived the restart scrub");
        }
        WireOutcome redo = c2.run(j2, backendStr);
        if (!redo.ok || redo.status != "miss") {
          fail("chaos-C1: lost job did not recompute after restart");
        }
        oracleCheck(j2, redo, "chaos-C1 recompute");
        WireOutcome warm = c2.run(j1, backendStr);
        if (!warm.ok || warm.status != "hit" || warm.payload != out1.payload) {
          fail("chaos-C1: durable pre-crash entry not served byte-identical");
        }
        stopClean(c2, pid, "chaos-C1");
        std::printf("chaos-C1 crash mid-store: torn .tmp scrubbed, "
                    "recompute + durable hit byte-identical\n");
      }
    }
  }
  {
    // C2: SIGKILL with a job in flight — nothing graceful anywhere.  The
    // store directory must come back serviceable and correct.
    const std::string cacheDir = tmpDir + "/cache-c2";
    ServeClient c;
    pid_t pid = start(cacheDir, 1, 16, 0, "", c);
    if (pid > 0) {
      std::thread victim([&] {
        ServeClient k;
        if (!connectRetry(k, socketPath)) return;
        JobSpec big{"ami33", ami33, 31, 200000, 2};
        k.run(big, backendStr);  // dies with the daemon
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      victim.join();
      ServeClient c2;
      pid = start(cacheDir, 1, 16, 0, "", c2);
      if (pid > 0) {
        JobSpec j{"ami33", ami33, 32, 64, 2};
        WireOutcome out = c2.run(j, backendStr);
        if (!out.ok || out.status != "miss") {
          fail("chaos-C2: job after SIGKILL restart failed");
        }
        oracleCheck(j, out, "chaos-C2");
        stopClean(c2, pid, "chaos-C2");
        std::printf("chaos-C2 SIGKILL mid-job: restart serves correctly\n");
      }
    }
  }
  {
    // C3: die immediately after delivering a RESULT — the entry is durable,
    // the restarted daemon must serve it warm and byte-identical.
    const std::string cacheDir = tmpDir + "/cache-c3";
    ServeClient c;
    pid_t pid = start(cacheDir, 1, 16, 0, "crash@serve-after-result:1", c);
    if (pid > 0) {
      JobSpec j{"apte", apte, 23, 64, 2};
      WireOutcome out = c.run(j, backendStr);
      if (!out.ok || out.status != "miss") {
        fail("chaos-C3: job before crash point failed");
      }
      waitCrash(pid, "chaos-C3");
      ServeClient c2;
      pid = start(cacheDir, 1, 16, 0, "", c2);
      if (pid > 0) {
        WireOutcome warm = c2.run(j, backendStr);
        if (!warm.ok || warm.status != "hit" || warm.payload != out.payload) {
          fail("chaos-C3: durable entry not served warm after crash");
        }
        stopClean(c2, pid, "chaos-C3");
        std::printf("chaos-C3 crash after RESULT: durable entry hits warm\n");
      }
    }
  }

  // --- phase D: deadlines ----------------------------------------------------
  {
    ServeClient c;
    pid_t pid = start(tmpDir + "/cache-d", 1, 16, 0, "", c);
    if (pid > 0) {
      JobSpec wall{"ami33", ami33, 41, 200000, 2};
      wall.deadlineMs = 300;
      WireOutcome w = c.run(wall, backendStr);
      if (!w.ok || w.status != "deadline") {
        fail("chaos-D: wall-deadline job reported '" +
             (w.ok ? w.status : w.error) + "', expected 'deadline'");
      } else if (w.latencySec > 10.0) {
        fail("chaos-D: wall deadline honored only after " +
             std::to_string(w.latencySec) + "s");
      }
      // Not in the cache key, and the cut-short result must not be cached:
      // the SAME job resubmitted must deadline again, never hit.
      WireOutcome again = c.run(wall, backendStr);
      if (again.ok && again.status == "hit") {
        fail("chaos-D: deadline-expired result was served from the cache");
      }
      JobSpec swp{"ami33", ami33, 42, 200000, 2};
      swp.deadlineSweeps = 64;
      WireOutcome sw = c.run(swp, backendStr);
      if (!sw.ok || sw.status != "deadline") {
        fail("chaos-D: sweep-deadline job reported '" +
             (sw.ok ? sw.status : sw.error) + "', expected 'deadline'");
      } else if (sw.progressTotal > 4) {
        // 2 slices x 16 sweeps/round crosses the 64-sweep budget in round
        // 2; one more round winds down.  >4 means the round-granular check
        // is not being honored.
        fail("chaos-D: sweep deadline acknowledged only after " +
             std::to_string(sw.progressTotal) + " progress rounds");
      }
      ServeStats s{};
      if (!c.stats(s)) fail("chaos-D: STATS");
      if (s.deadlineExpired < 2) {
        fail("chaos-D: STATS deadline-expired " +
             std::to_string(s.deadlineExpired) + ", expected >= 2");
      }
      stopClean(c, pid, "chaos-D");
      std::printf("chaos-D deadlines: wall %.0fms, sweep within %zu "
                  "round(s), never cached\n",
                  w.latencySec * 1e3, sw.progressTotal);
    }
  }

  // --- phase E: backpressure + retry ----------------------------------------
  // One slot, occupied by a long job: a retrying client must see REJECTED,
  // back off, and land the job once the slot frees — attempts > 1 proves
  // the backpressure path actually fired.
  {
    ServeClient c;
    pid_t pid = start(tmpDir + "/cache-e", 1, /*queue=*/1, 0, "", c);
    if (pid > 0) {
      std::thread occupier([&] {
        ServeClient k;
        if (!connectRetry(k, socketPath)) return;
        JobSpec big{"ami33", ami33, 51, 8000, 2};
        k.run(big, backendStr);
      });
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      ServeClient rc;
      if (!connectRetry(rc, socketPath)) {
        fail("chaos-E: retry client connect");
        occupier.join();
      } else {
        Rng rng(7);
        JobSpec small{"apte", apte, 52, 64, 2};
        WireOutcome out =
            runWithRetry(rc, small, backendStr, rng, /*maxAttempts=*/400);
        occupier.join();
        if (!out.ok) {
          fail("chaos-E: retried job never completed (" +
               (out.rejected ? std::string("still rejected") : out.error) +
               ")");
        } else if (out.attempts < 2) {
          fail("chaos-E: job accepted on attempt 1 — backpressure never "
               "fired (timing too generous?)");
        } else {
          oracleCheck(small, out, "chaos-E");
        }
        ServeStats s{};
        if (!c.stats(s)) fail("chaos-E: STATS");
        if (s.rejected < 1) fail("chaos-E: STATS shows no rejections");
        stopClean(c, pid, "chaos-E");
        std::printf("chaos-E backpressure: accepted on attempt %zu after "
                    "deterministic backoff\n",
                    out.attempts);
      }
    }
  }

  // --- phase F: size cap -----------------------------------------------------
  {
    const std::string cacheDir = tmpDir + "/cache-f";
    ServeClient c;
    pid_t pid = start(cacheDir, 2, 16, /*cap=*/3, "", c);
    if (pid > 0) {
      Rng rng(3);
      for (std::uint64_t s = 61; s <= 65; ++s) {
        JobSpec j{"apte", apte, s, 64, 2};
        WireOutcome out = runWithRetry(c, j, backendStr, rng);
        if (!out.ok) fail("chaos-F: job failed");
      }
      ServeStats s{};
      if (!c.stats(s)) fail("chaos-F: STATS");
      if (s.evicted < 2) {
        fail("chaos-F: STATS evicted " + std::to_string(s.evicted) +
             ", expected >= 2 with cap 3 and 5 unique jobs");
      }
      stopClean(c, pid, "chaos-F");
      const std::size_t files = countFiles(cacheDir, ".alsresult");
      if (files > 3) {
        fail("chaos-F: " + std::to_string(files) +
             " files on disk exceed the cap of 3");
      }
      std::printf("chaos-F size cap: 5 unique jobs, cap 3 -> %llu evicted, "
                  "%zu files on disk\n",
                  static_cast<unsigned long long>(s.evicted), files);
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(tmpDir, ec);
  std::printf("als_replay --faults: %s (%d failure(s))\n",
              failures == 0 ? "PASS" : "FAIL", failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);  // owns --json

  std::string socketPath, serveBin, backendArg = "seqpair";
  std::string circuitsArg = "apte,ami33", warmCircuit = "ami49";
  std::size_t workers = 2, queue = 64, progressInterval = 16;
  std::size_t jobs = 24, clients = 4, identityClients = 8;
  std::size_t sweeps = 64, restarts = 4, warmSweeps = 256,
              cancelSweeps = 200000;
  double dupRatio = 0.5;
  bool check = false;
  bool faultsMode = false;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    auto numArg = [&](std::size_t* out, std::uint64_t lo, std::uint64_t hi) {
      const char* v = value();
      if (!v || !parseNum(v, &n) || n < lo || n > hi) return false;
      *out = static_cast<std::size_t>(n);
      return true;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      socketPath = v;
    } else if (arg == "--serve-bin") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      serveBin = v;
    } else if (arg == "--backend") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      backendArg = v;
    } else if (arg == "--circuits") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      circuitsArg = v;
    } else if (arg == "--warm-circuit") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      warmCircuit = v;
    } else if (arg == "--workers") {
      if (!numArg(&workers, 1, 256)) return usage(argv[0]);
    } else if (arg == "--queue") {
      if (!numArg(&queue, 1, 65536)) return usage(argv[0]);
    } else if (arg == "--progress-interval") {
      if (!numArg(&progressInterval, 1, 1u << 30)) return usage(argv[0]);
    } else if (arg == "--jobs") {
      if (!numArg(&jobs, 1, 1u << 20)) return usage(argv[0]);
    } else if (arg == "--clients") {
      if (!numArg(&clients, 1, 1024)) return usage(argv[0]);
    } else if (arg == "--identity-clients") {
      if (!numArg(&identityClients, 1, 1024)) return usage(argv[0]);
    } else if (arg == "--sweeps") {
      if (!numArg(&sweeps, 1, 1u << 30)) return usage(argv[0]);
    } else if (arg == "--restarts") {
      if (!numArg(&restarts, 1, 1u << 20)) return usage(argv[0]);
    } else if (arg == "--warm-sweeps") {
      if (!numArg(&warmSweeps, 1, 1u << 30)) return usage(argv[0]);
    } else if (arg == "--cancel-sweeps") {
      if (!numArg(&cancelSweeps, 1, 1u << 30)) return usage(argv[0]);
    } else if (arg == "--dup-ratio") {
      const char* v = value();
      char* end = nullptr;
      double r = v ? std::strtod(v, &end) : 0.0;
      if (!v || end == v || *end != '\0' || !(r >= 0.0) || r >= 1.0) {
        return usage(argv[0]);
      }
      dupRatio = r;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--faults") {
      faultsMode = true;
    } else if (arg == "--json") {
      ++i;  // value consumed by BenchIo
    } else {
      std::fprintf(stderr, "als_replay: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (socketPath.empty() && serveBin.empty()) return usage(argv[0]);

  EngineBackend backend = EngineBackend::SeqPair;
  if (!parseBackendName(backendArg, backend)) {
    std::fprintf(stderr, "als_replay: unknown backend '%s'\n",
                 backendArg.c_str());
    return 2;
  }
  const std::string backendStr(backendName(backend));

  if (faultsMode) {
    if (serveBin.empty()) {
      std::fprintf(stderr,
                   "als_replay: --faults needs --serve-bin (the harness owns "
                   "the daemon lifecycle)\n");
      return 2;
    }
    return runChaosHarness(serveBin, backend, backendStr, check);
  }

  // Resolve the circuit list against the embedded corpus.
  std::vector<std::pair<std::string, std::string_view>> circuits;
  for (std::size_t pos = 0; pos < circuitsArg.size();) {
    std::size_t comma = circuitsArg.find(',', pos);
    std::string name = circuitsArg.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? circuitsArg.size() : comma + 1;
    CorpusCircuit which;
    if (name.empty() || !corpusByName(name, &which)) {
      std::fprintf(stderr, "als_replay: unknown corpus circuit '%s'\n",
                   name.c_str());
      return 2;
    }
    circuits.emplace_back(name, corpusText(which));
  }
  CorpusCircuit warmWhich;
  if (!corpusByName(warmCircuit, &warmWhich)) {
    std::fprintf(stderr, "als_replay: unknown corpus circuit '%s'\n",
                 warmCircuit.c_str());
    return 2;
  }
  std::string_view warmText = corpusText(warmWhich);

  // Spawn the daemon when asked (the hermetic mode CI uses): fresh socket
  // and cache dir in a temp directory, torn down at the end.
  pid_t daemonPid = -1;
  std::string tmpDir;
  if (!serveBin.empty()) {
    char tmpl[] = "/tmp/als_replay.XXXXXX";
    const char* made = ::mkdtemp(tmpl);
    if (made == nullptr) {
      std::perror("als_replay: mkdtemp");
      return 1;
    }
    tmpDir = made;
    socketPath = tmpDir + "/als.sock";
    daemonPid = spawnDaemon(serveBin, socketPath, tmpDir + "/cache", workers,
                            queue, progressInterval);
    if (daemonPid < 0) {
      std::perror("als_replay: fork");
      return 1;
    }
  }

  int failures = 0;
  auto fail = [&](const std::string& what) {
    std::fprintf(stderr, "als_replay: FAIL %s\n", what.c_str());
    ++failures;
  };

  // One control connection for FLUSH / STATS / SHUTDOWN, which doubles as
  // the connect-retry probe for a just-spawned daemon.
  ServeClient control;
  if (!connectRetry(control, socketPath)) {
    std::fprintf(stderr, "als_replay: cannot connect to %s\n",
                 socketPath.c_str());
    if (daemonPid > 0) ::kill(daemonPid, SIGKILL);
    return 1;
  }

  std::printf("als_replay: daemon at %s, backend=%s, %zu circuit(s), "
              "sweeps=%zu, restarts=%zu\n",
              socketPath.c_str(), backendStr.c_str(), circuits.size(), sweeps,
              restarts);

  // --- phase: identity (1 client vs N clients, both computing) -------------
  const std::size_t identitySeeds = 4;
  std::vector<JobSpec> identityJobs;
  for (const auto& [name, text] : circuits) {
    for (std::size_t s = 0; s < identitySeeds; ++s) {
      identityJobs.push_back({name, text, s + 1, sweeps, restarts});
    }
  }
  std::vector<PhaseJobResult> lone =
      runPhase(socketPath, identityJobs, backendStr, 1);
  if (!control.flush()) fail("FLUSH before concurrent identity round");
  std::vector<PhaseJobResult> crowd =
      runPhase(socketPath, identityJobs, backendStr, identityClients);
  std::size_t identityMismatches = 0;
  for (std::size_t i = 0; i < identityJobs.size(); ++i) {
    const WireOutcome& a = lone[i].outcome;
    const WireOutcome& b = crowd[i].outcome;
    if (!a.ok || !b.ok) {
      fail("identity job " + identityJobs[i].circuit + "/seed" +
           std::to_string(identityJobs[i].seed) + ": " +
           (!a.ok ? a.error : b.error));
      continue;
    }
    if (fnv1a64(a.payload) != fnv1a64(b.payload) || a.payload != b.payload) {
      ++identityMismatches;
      fail("identity: " + identityJobs[i].circuit + "/seed" +
           std::to_string(identityJobs[i].seed) +
           " differs between 1 and " + std::to_string(identityClients) +
           " clients");
    }
    if (check && fnv1a64(a.payload) != oracleDigest(identityJobs[i], backend)) {
      fail("oracle: " + identityJobs[i].circuit + "/seed" +
           std::to_string(identityJobs[i].seed) +
           " served result differs from in-process PortfolioRunner");
    }
    // Quality rows for bench_diff: deterministic cost/hpwl/area under the
    // serve name.  seconds stays 0 — latency is a machine fact, recorded in
    // the serve-meta rows instead, so the throughput gate sees these as
    // presence+quality only.
    if (lone[i].jobIndex % identitySeeds == 0) {
      EngineBackend rb;
      EngineResult r;
      if (parseResultText(a.payload, rb, r).empty()) {
        io.add("serve-" + backendStr, identityJobs[i].circuit, r, 1);
      }
    }
  }
  std::printf("identity: %zu job(s) x {1, %zu} clients, %zu mismatch(es)\n",
              identityJobs.size(), identityClients, identityMismatches);

  // --- phase: throughput under duplicates -----------------------------------
  const std::size_t unique = std::max<std::size_t>(
      1, jobs - static_cast<std::size_t>(dupRatio *
                                         static_cast<double>(jobs)));
  std::vector<JobSpec> pool;
  for (std::size_t u = 0; u < unique; ++u) {
    const auto& [name, text] = circuits[u % circuits.size()];
    pool.push_back({name, text, 100 + u, sweeps, restarts});
  }
  std::vector<JobSpec> stream;
  for (std::size_t i = 0; i < jobs; ++i) stream.push_back(pool[i % unique]);

  ServeStats before{}, after{};
  if (!control.stats(before)) fail("STATS before throughput phase");
  Stopwatch phaseClock;
  std::vector<PhaseJobResult> streamResults =
      runPhase(socketPath, stream, backendStr, clients);
  double phaseSeconds = phaseClock.seconds();
  if (!control.stats(after)) fail("STATS after throughput phase");

  std::vector<double> latencies;
  for (const PhaseJobResult& r : streamResults) {
    if (!r.outcome.ok) {
      fail("throughput job " + std::to_string(r.jobIndex) + ": " +
           (r.outcome.rejected ? "rejected" : r.outcome.error));
      continue;
    }
    latencies.push_back(r.outcome.latencySec);
  }
  const std::uint64_t hits = after.cacheHits - before.cacheHits;
  const std::uint64_t misses = after.cacheMisses - before.cacheMisses;
  const double hitRate =
      hits + misses > 0
          ? static_cast<double>(hits) / static_cast<double>(hits + misses)
          : 0.0;
  const double p50 = percentile(latencies, 0.50);
  const double p95 = percentile(latencies, 0.95);
  const double pmax = latencies.empty()
                          ? 0.0
                          : *std::max_element(latencies.begin(),
                                              latencies.end());
  const double jps = phaseSeconds > 0.0
                         ? static_cast<double>(latencies.size()) / phaseSeconds
                         : 0.0;
  std::printf("throughput: %zu job(s) (%zu unique) at %zu client(s) in "
              "%.3fs — %.1f jobs/s, latency p50 %.1fms p95 %.1fms max "
              "%.1fms, cache hits %llu / misses %llu (%.0f%% hit rate)\n",
              jobs, unique, clients, phaseSeconds, jps, p50 * 1e3, p95 * 1e3,
              pmax * 1e3, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hitRate * 100.0);
  if (check && jobs > unique && hits == 0) {
    fail("throughput: duplicate jobs produced no cache hits");
  }

  // --- phase: warm vs cold ---------------------------------------------------
  if (!control.flush()) fail("FLUSH before warm/cold phase");
  JobSpec warmJob{warmCircuit, warmText, 777, warmSweeps, restarts};
  ServeClient warmClient;
  double coldSec = 0.0, warmSec = 0.0, speedup = 0.0;
  if (!warmClient.connect(socketPath)) {
    fail("warm/cold: connect failed");
  } else {
    WireOutcome cold = warmClient.run(warmJob, backendStr);
    if (!cold.ok || cold.status != "miss") {
      fail("warm/cold: cold run not a computed miss (" +
           (cold.ok ? cold.status : cold.error) + ")");
    } else {
      coldSec = cold.latencySec;
      warmSec = cold.latencySec;  // min over warm resubmissions below
      bool identical = true;
      for (int rep = 0; rep < 5; ++rep) {
        WireOutcome warm = warmClient.run(warmJob, backendStr);
        if (!warm.ok || warm.status != "hit") {
          fail("warm/cold: resubmission was not a cache hit");
          identical = false;
          break;
        }
        warmSec = std::min(warmSec, warm.latencySec);
        identical = identical && warm.payload == cold.payload;
      }
      if (!identical) {
        fail("warm/cold: cached payload differs from the cold compute");
      }
      speedup = warmSec > 0.0 ? coldSec / warmSec : 0.0;
      std::printf("warm/cold: %s cold %.1fms, warm %.3fms -> %.0fx\n",
                  warmCircuit.c_str(), coldSec * 1e3, warmSec * 1e3, speedup);
      if (check && speedup < 50.0) {
        fail("warm/cold: speedup " + std::to_string(speedup) +
             "x is below the 50x acceptance floor");
      }
    }
  }

  // --- phase: cancellation ---------------------------------------------------
  JobSpec cancelJob{warmCircuit, warmText, 888, cancelSweeps, restarts};
  JobSpec freshJob{circuits.front().first, circuits.front().second, 999,
                   sweeps, restarts};
  ServeClient cancelClient;
  std::size_t ackRounds = 0;
  if (!cancelClient.connect(socketPath)) {
    fail("cancel: connect failed");
  } else {
    WireOutcome cancelled = cancelClient.run(cancelJob, backendStr,
                                             /*cancelAfterRounds=*/2);
    if (!cancelled.ok || cancelled.status != "cancelled") {
      fail("cancel: job did not complete as cancelled (" +
           (cancelled.ok ? cancelled.status : cancelled.error) + ")");
    } else {
      ackRounds = cancelled.progressAfterCancel;
      std::printf("cancel: acknowledged after %zu progress round(s) "
                  "(%zu total before RESULT)\n",
                  ackRounds, cancelled.progressTotal);
      // One round may already be in flight when CANCEL lands; the round
      // that observes the token still reports.  More than two means the
      // sweep-granular check is not being honored.
      if (check && ackRounds > 2) {
        fail("cancel: " + std::to_string(ackRounds) +
             " progress rounds after CANCEL (acceptance bound: 2)");
      }
    }
    WireOutcome fresh = cancelClient.run(freshJob, backendStr);
    if (!fresh.ok || fresh.status != "miss") {
      fail("cancel: fresh job after cancel not computed (" +
           (fresh.ok ? fresh.status : fresh.error) + ")");
    } else if (check &&
               fnv1a64(fresh.payload) != oracleDigest(freshJob, backend)) {
      fail("cancel: post-cancel fresh job differs from an unperturbed "
           "process (worker state was perturbed by the cancel)");
    }
  }

  // --- meta records + teardown ----------------------------------------------
  auto meta = [&](const char* name, double value) {
    BenchRecord r;
    r.backend = "serve-meta";
    r.circuit = name;
    r.seconds = value;  // metric value; cost/sweeps stay 0 (presence-only)
    io.add(std::move(r));
  };
  meta("latency-p50", p50);
  meta("latency-p95", p95);
  meta("latency-max", pmax);
  meta("throughput-jps", jps);
  meta("hit-rate", hitRate);
  meta("warm-cold-speedup", speedup);
  meta("cancel-ack-rounds", static_cast<double>(ackRounds));

  if (daemonPid > 0) {
    if (!control.shutdownDaemon()) fail("SHUTDOWN not acknowledged");
    int status = 0;
    if (::waitpid(daemonPid, &status, 0) != daemonPid ||
        !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      fail("daemon did not exit cleanly");
    }
    std::error_code ec;
    std::filesystem::remove_all(tmpDir, ec);
  }

  std::printf("als_replay: %s (%d failure(s))\n",
              failures == 0 ? "PASS" : "FAIL", failures);
  return failures == 0 ? 0 : 1;
}
