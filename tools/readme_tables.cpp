// readme_tables — regenerates the README's measured-throughput tables from
// the committed BENCH_baseline.json, so the numbers the README shows are
// the numbers CI actually gates on (bench_diff) rather than hand-copied
// output that drifts.
//
// The README marks each generated table with HTML comment fences:
//
//   <!-- BEGIN readme_tables:<name> -->
//   ...generated markdown table...
//   <!-- END readme_tables:<name> -->
//
// Two tables are generated from the baseline's aggregated ops/sec rates
// (sum of `sweeps` over sum of `seconds` per backend x circuit pair, the
// same aggregation bench_diff gates):
//
//   decode    map-contour vs flat-contour packing rate per MCNC circuit
//             (the `decode-map` / `decode-flat` rows)
//   scaling   full vs partial/incremental end-to-end move rate for the
//             flat B*-tree and sequence-pair backends up to n300 (the
//             `flat-full`/`flat-partial`/`seqpair-full`/
//             `seqpair-incremental` rows)
//
// Default mode rewrites README.md in place; --check (the CI leg) exits
// nonzero if the committed tables differ from what the baseline says,
// which keeps README and baseline in sync by construction.  Refresh both
// together: re-merge the baseline, run readme_tables, commit the pair.
//
//   readme_tables [--baseline BENCH_baseline.json] [--readme README.md]
//                 [--check]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "io/corpus.h"
#include "util/flat_records.h"

namespace {

using namespace als;

int usage() {
  std::fprintf(stderr,
               "usage: readme_tables [--baseline <BENCH_baseline.json>] "
               "[--readme <README.md>] [--check]\n"
               "regenerates the fenced README tables from the committed "
               "baseline; --check only verifies they are in sync (nonzero "
               "exit when not)\n");
  return 2;
}

/// ops/sec of one backend x circuit pair, aggregated like bench_diff.
struct Rate {
  double ops = 0.0;
  double seconds = 0.0;
  double perSec() const { return seconds > 0.0 ? ops / seconds : 0.0; }
};

std::map<std::string, Rate> rates(const std::vector<FlatRecord>& recs) {
  std::map<std::string, Rate> out;
  for (const FlatRecord& r : recs) {
    auto backend = r.strings.find("backend");
    auto circuit = r.strings.find("circuit");
    if (backend == r.strings.end() || circuit == r.strings.end()) continue;
    Rate& rate = out[backend->second + " x " + circuit->second];
    rate.ops += r.number("sweeps");
    rate.seconds += r.number("seconds");
  }
  return out;
}

std::string fmtK(double perSec, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*fk", decimals, perSec / 1e3);
  return buf;
}

std::string fmtX(double ratio, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*fx", decimals, ratio);
  return buf;
}

std::size_t blockCount(const std::string& circuit) {
  CorpusCircuit which;
  if (!corpusByName(circuit, &which)) return 0;
  return loadCorpusCircuit(which).moduleCount();
}

/// | circuit | blocks | map contour | flat contour | speedup |
std::string decodeTable(const std::map<std::string, Rate>& pairs) {
  std::string out =
      "| circuit | blocks | map contour | flat contour | speedup |\n"
      "|---|---|---|---|---|\n";
  for (const char* circuit : {"apte", "xerox", "hp", "ami33", "ami49"}) {
    auto mapIt = pairs.find("decode-map x " + std::string(circuit));
    auto flatIt = pairs.find("decode-flat x " + std::string(circuit));
    if (mapIt == pairs.end() || flatIt == pairs.end()) continue;
    double mapRate = mapIt->second.perSec();
    double flatRate = flatIt->second.perSec();
    out += "| " + std::string(circuit) + " | " +
           std::to_string(blockCount(circuit)) + " | " + fmtK(mapRate, 0) +
           "/s | " + fmtK(flatRate, 0) + "/s | " +
           fmtX(mapRate > 0.0 ? flatRate / mapRate : 0.0, 1) + " |\n";
  }
  return out;
}

/// | circuit | blocks | flat full | flat partial | speedup | sp full | ...
std::string scalingTable(const std::map<std::string, Rate>& pairs) {
  std::string out =
      "| circuit | blocks | flat full | flat partial | speedup | sp full | "
      "sp incr | speedup |\n"
      "|---|---|---|---|---|---|---|---|\n";
  for (const char* circuit :
       {"apte", "ami33", "ami49", "n100", "n200", "n300"}) {
    auto cell = [&](const char* backend) {
      auto it = pairs.find(std::string(backend) + " x " + circuit);
      return it == pairs.end() ? 0.0 : it->second.perSec();
    };
    double flatFull = cell("flat-full"), flatPartial = cell("flat-partial");
    double spFull = cell("seqpair-full"), spIncr = cell("seqpair-incremental");
    if (flatFull == 0.0 && spFull == 0.0) continue;
    out += "| " + std::string(circuit) + " | " +
           std::to_string(blockCount(circuit)) + " | " + fmtK(flatFull, 1) +
           " | " + fmtK(flatPartial, 1) + " | " +
           fmtX(flatFull > 0.0 ? flatPartial / flatFull : 0.0, 2) + " | " +
           fmtK(spFull, 1) + " | " + fmtK(spIncr, 1) + " | " +
           fmtX(spFull > 0.0 ? spIncr / spFull : 0.0, 2) + " |\n";
  }
  return out;
}

/// Replaces the fenced block `name` in `text` with `table` (fences stay).
/// Returns false when the fences are missing or malformed.
bool splice(std::string& text, const std::string& name,
            const std::string& table) {
  const std::string begin = "<!-- BEGIN readme_tables:" + name + " -->\n";
  const std::string end = "<!-- END readme_tables:" + name + " -->";
  std::size_t lo = text.find(begin);
  if (lo == std::string::npos) return false;
  lo += begin.size();
  std::size_t hi = text.find(end, lo);
  if (hi == std::string::npos) return false;
  text.replace(lo, hi - lo, table);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baselinePath = "BENCH_baseline.json";
  std::string readmePath = "README.md";
  bool checkOnly = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--check") {
      checkOnly = true;
    } else if (arg == "--baseline" && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (arg == "--readme" && i + 1 < argc) {
      readmePath = argv[++i];
    } else {
      return usage();
    }
  }

  std::vector<FlatRecord> recs;
  std::string error;
  if (!loadFlatRecords(baselinePath, recs, error)) {
    std::fprintf(stderr, "readme_tables: %s\n", error.c_str());
    return 2;
  }
  std::map<std::string, Rate> pairs = rates(recs);

  std::FILE* f = std::fopen(readmePath.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "readme_tables: cannot open '%s'\n",
                 readmePath.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);

  std::string updated = text;
  for (const auto& [name, table] :
       {std::pair<std::string, std::string>{"decode", decodeTable(pairs)},
        {"scaling", scalingTable(pairs)}}) {
    if (!splice(updated, name, table)) {
      std::fprintf(stderr,
                   "readme_tables: %s: fenced block 'readme_tables:%s' "
                   "missing or malformed\n",
                   readmePath.c_str(), name.c_str());
      return 2;
    }
  }

  if (updated == text) {
    std::printf("readme_tables: %s is in sync with %s\n", readmePath.c_str(),
                baselinePath.c_str());
    return 0;
  }
  if (checkOnly) {
    std::fprintf(stderr,
                 "readme_tables: FAIL %s tables are out of sync with %s — "
                 "run ./build/readme_tables and commit the result\n",
                 readmePath.c_str(), baselinePath.c_str());
    return 1;
  }
  std::FILE* out = std::fopen(readmePath.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "readme_tables: cannot write '%s'\n",
                 readmePath.c_str());
    return 2;
  }
  bool ok = std::fwrite(updated.data(), 1, updated.size(), out) ==
            updated.size();
  ok = std::fclose(out) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "readme_tables: short write to '%s'\n",
                 readmePath.c_str());
    return 2;
  }
  std::printf("readme_tables: regenerated tables in %s from %s\n",
              readmePath.c_str(), baselinePath.c_str());
  return 0;
}
