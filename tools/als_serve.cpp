// als_serve — placement-as-a-service daemon over a local stream socket.
//
// Thin socket front-end for the in-process serve engine (runtime/serve.h):
// accepts connections on an AF_UNIX socket, speaks the line-delimited
// "ALSSERVE 1" protocol documented in io/serve_protocol.h, and forwards
// jobs into a ServeEngine whose worker crew executes them against the
// content-addressed result cache.  Everything placement-related — admission
// control, scheduling, cancellation, caching, the bit-identity guarantees —
// lives in the library; this file is sockets, framing and thread plumbing
// only, so tests/serve_test.cpp can pin the engine without a socket in the
// loop and tools/als_replay can drive this binary end to end.
//
//   als_serve --socket /tmp/als.sock --workers 4 --cache-dir /tmp/als-cache
//
// One handler thread per connection; a per-connection write mutex keeps the
// worker threads' PROGRESS/RESULT lines and the handler's QUEUED/STATS
// replies whole (the protocol is tagged, so interleaving across jobs is
// fine — interleaving within a line is not).  SHUTDOWN drains every
// accepted job before the process exits, so a client that saw QUEUED
// always sees its RESULT.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "runtime/serve.h"
#include "util/fault_injection.h"

namespace {

using namespace als;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket <path> [options]\n"
               "  --socket <path>        AF_UNIX socket path (required; a stale\n"
               "                         file at the path is replaced)\n"
               "  --workers <n>          job-executing threads (default 2)\n"
               "  --queue <n>            job slots, pending+running; submissions\n"
               "                         beyond it are REJECTED (default 16)\n"
               "  --progress-interval <n> sweeps per restart slice between\n"
               "                         PROGRESS events (default 32)\n"
               "  --cache-dir <dir>      persisted result store (default: memory\n"
               "                         only)\n"
               "  --cache-cap <n>        result cache size cap, memory+disk\n"
               "                         entries (default 0 = unbounded)\n"
               "  --faults <spec>        arm deterministic fault injection on the\n"
               "                         store path (util/fault_injection.h —\n"
               "                         chaos testing only)\n"
               "protocol: see src/io/serve_protocol.h (\"ALSSERVE 1\")\n",
               argv0);
  return 2;
}

bool parseNum(const char* s, std::uint64_t* out) {
  if (*s < '0' || *s > '9') return false;
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  *out = v;
  return true;
}

std::atomic<bool> g_stop{false};
int g_listenFd = -1;

/// One client connection.  Shared between the handler thread and any worker
/// threads still holding this connection's job callbacks, so it lives as a
/// shared_ptr and closes its fd only when the last holder lets go.
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd;
  std::mutex writeMutex;  ///< one protocol line/block at a time
  std::mutex tagMutex;
  std::unordered_map<std::string, std::uint64_t> tags;  ///< live tag -> job id
};

/// Writes the whole buffer; the caller must hold `writeMutex`.  Retries
/// EINTR and short writes — a tagged reply is delivered whole or not at
/// all, never a prefix followed by a give-up under load.  Errors (client
/// went away) are swallowed: the job finishes either way, and SIGPIPE is
/// ignored process-wide.
void writeAllLocked(Connection& conn, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::write(conn.fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

/// Locking wrapper: one protocol line/block at a time.
void writeAll(Connection& conn, const std::string& data) {
  std::lock_guard<std::mutex> lock(conn.writeMutex);
  writeAllLocked(conn, data);
}

/// Buffered reader over the connection fd: lines for the protocol, exact
/// byte counts for CIRCUIT payloads.
class Reader {
 public:
  explicit Reader(int fd) : fd_(fd) {}

  bool readLine(std::string& line) {
    line.clear();
    for (;;) {
      std::size_t nl = buffer_.find('\n', pos_);
      if (nl != std::string::npos) {
        line.assign(buffer_, pos_, nl - pos_);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        pos_ = nl + 1;
        compact();
        return true;
      }
      if (!fill()) return false;
    }
  }

  bool readExact(std::size_t n, std::string& out) {
    out.clear();
    while (buffer_.size() - pos_ < n) {
      if (!fill()) return false;
    }
    out.assign(buffer_, pos_, n);
    pos_ += n;
    compact();
    return true;
  }

 private:
  bool fill() {
    char chunk[65536];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);  // a signal is not an EOF
    if (n <= 0) return false;  // EOF or real error: connection is done
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }
  void compact() {
    if (pos_ > (1u << 20)) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }

  int fd_;
  std::string buffer_;
  std::size_t pos_ = 0;
};

std::string_view nextToken(std::string_view& rest) {
  std::size_t a = rest.find_first_not_of(" \t");
  if (a == std::string_view::npos) {
    rest = {};
    return {};
  }
  std::size_t b = rest.find_first_of(" \t", a);
  std::string_view token = rest.substr(a, b == std::string_view::npos
                                              ? std::string_view::npos
                                              : b - a);
  rest = b == std::string_view::npos ? std::string_view{} : rest.substr(b);
  return token;
}

void appendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Parses one JOB block (the JOB line is already consumed and split) and
/// submits it.  Framing errors abort the connection (return false) — after
/// a mis-framed CIRCUIT the stream position is unrecoverable; semantic
/// errors (unknown backend/OPT) are reported as ERROR lines and keep the
/// connection usable.
bool handleJob(ServeEngine& engine, const std::shared_ptr<Connection>& conn,
               Reader& reader, std::string_view tag,
               std::string_view backendWord) {
  std::string tagStr(tag);
  EngineBackend backend = EngineBackend::FlatBStar;
  std::string semanticError;
  if (!parseBackendName(backendWord, backend)) {
    semanticError = "unknown backend '" + std::string(backendWord) + "'";
  }

  EngineOptions options;
  double deadlineSeconds = 0.0;
  std::uint64_t deadlineSweeps = 0;
  std::string line, circuitText;
  bool sawCircuit = false;
  for (;;) {
    if (!reader.readLine(line)) return false;
    std::string_view rest = line;
    std::string_view word = nextToken(rest);
    if (word == "END") break;
    if (word == "OPT") {
      std::string_view key = nextToken(rest);
      std::string_view value = nextToken(rest);
      // Deadlines are serve-layer knobs, not EngineOptions: they bound
      // whether a run finishes, never what a finished run produces, so they
      // stay out of applyJobOption and out of the cache key.
      if (key == "deadline-ms" || key == "deadline-sweeps") {
        std::uint64_t n = 0;
        if (!parseNum(std::string(value).c_str(), &n)) {
          if (semanticError.empty()) {
            semanticError =
                "bad OPT " + std::string(key) + ": nonnegative integer";
          }
        } else if (key == "deadline-ms") {
          deadlineSeconds = static_cast<double>(n) / 1000.0;
        } else {
          deadlineSweeps = n;
        }
      } else if (semanticError.empty()) {
        semanticError = applyJobOption(options, key, value);
      }
    } else if (word == "CIRCUIT") {
      std::uint64_t nbytes = 0;
      std::string count(nextToken(rest));
      // 64 MiB cap: a framing typo must not become an allocation bomb.
      if (!parseNum(count.c_str(), &nbytes) || nbytes > (64u << 20)) {
        return false;
      }
      if (!reader.readExact(static_cast<std::size_t>(nbytes), circuitText)) {
        return false;
      }
      sawCircuit = true;
    } else {
      return false;  // not part of a JOB block: framing is broken
    }
  }
  if (semanticError.empty() && !sawCircuit) {
    semanticError = "JOB block has no CIRCUIT";
  }
  if (!semanticError.empty()) {
    writeAll(*conn, "ERROR " + tagStr + " " + semanticError + "\n");
    return true;
  }

  ServeEngine::Job job;
  job.circuitText = std::move(circuitText);
  job.backend = backend;
  job.options = options;
  job.deadlineSeconds = deadlineSeconds;
  job.deadlineSweeps = static_cast<std::size_t>(deadlineSweeps);
  job.onProgress = [conn, tagStr](std::size_t round, std::size_t sweeps,
                                  double best) {
    std::string out = "PROGRESS " + tagStr + " " + std::to_string(round) +
                      " " + std::to_string(sweeps) + " ";
    appendDouble(out, best);
    out += "\n";
    writeAll(*conn, out);
  };
  job.onDone = [conn, tagStr](const ServeEngine::JobOutcome& outcome) {
    {
      std::lock_guard<std::mutex> lock(conn->tagMutex);
      conn->tags.erase(tagStr);
    }
    if (!outcome.error.empty()) {
      writeAll(*conn, "ERROR " + tagStr + " " + outcome.error + "\n");
      return;
    }
    const char* status = outcome.cacheHit          ? "hit"
                         : outcome.deadlineExpired ? "deadline"
                         : outcome.cancelled       ? "cancelled"
                                                   : "miss";
    std::string payload;
    writeResultText(outcome.backend, *outcome.result, payload);
    std::string out = "RESULT " + tagStr + " " + status + " " +
                      std::to_string(payload.size()) + "\n";
    out += payload;
    out += "DONE " + tagStr + "\n";
    writeAll(*conn, out);
    // Chaos-test crash window: the client HAS its RESULT, the daemon dies
    // before anything else happens — restart recovery must serve the same
    // bytes from the durable store.
    FaultInjector::global().onCrashPoint("serve-after-result");
  };

  // Submit while holding the write mutex so the QUEUED line reaches the
  // client before any PROGRESS a fast worker might already be emitting
  // (callbacks also take the write mutex, on worker threads, so there is no
  // self-deadlock).  The tag is registered before QUEUED is visible, so a
  // CANCEL sent in response to QUEUED always finds its job.
  std::unique_lock<std::mutex> writeLock(conn->writeMutex);
  ServeEngine::Submission sub = engine.submit(std::move(job));
  std::string reply;
  if (sub.accepted) {
    {
      std::lock_guard<std::mutex> lock(conn->tagMutex);
      conn->tags[tagStr] = sub.id;
    }
    reply = "QUEUED " + tagStr + " " + sub.key.hex() + "\n";
  } else {
    reply = "REJECTED " + tagStr + " queue-full\n";
  }
  writeAllLocked(*conn, reply);
  return true;
}

void handleConnection(ServeEngine& engine, std::shared_ptr<Connection> conn) {
  Reader reader(conn->fd);
  std::string line;
  while (reader.readLine(line)) {
    std::string_view rest = line;
    std::string_view word = nextToken(rest);
    if (word.empty()) continue;
    if (word == "JOB") {
      std::string_view tag = nextToken(rest);
      std::string_view backendWord = nextToken(rest);
      if (tag.empty() || backendWord.empty()) {
        writeAll(*conn, "ERROR ? JOB needs <tag> <backend>\n");
        continue;
      }
      if (!handleJob(engine, conn, reader, tag, backendWord)) break;
    } else if (word == "CANCEL") {
      std::string tag(nextToken(rest));
      std::uint64_t id = 0;
      {
        std::lock_guard<std::mutex> lock(conn->tagMutex);
        auto it = conn->tags.find(tag);
        if (it != conn->tags.end()) id = it->second;
      }
      if (id != 0) engine.cancel(id);
    } else if (word == "STATS") {
      ServeStats s = engine.stats();
      writeAll(*conn, "STATS " + std::to_string(s.submitted) + " " +
                          std::to_string(s.completed) + " " +
                          std::to_string(s.cacheHits) + " " +
                          std::to_string(s.cacheMisses) + " " +
                          std::to_string(s.cancelled) + " " +
                          std::to_string(s.rejected) + " " +
                          std::to_string(s.deadlineExpired) + " " +
                          std::to_string(s.quarantined) + " " +
                          std::to_string(s.evicted) + " " +
                          std::to_string(s.memoryOnly ? 1 : 0) + "\n");
    } else if (word == "FLUSH") {
      engine.cache().clear();
      writeAll(*conn, "FLUSHED\n");
    } else if (word == "SHUTDOWN") {
      writeAll(*conn, "BYE\n");
      g_stop.store(true);
      if (g_listenFd >= 0) ::shutdown(g_listenFd, SHUT_RDWR);
      break;
    } else {
      writeAll(*conn, "ERROR ? unknown command\n");
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socketPath;
  ServeOptions options;
  options.workers = 2;

  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    std::uint64_t n = 0;
    if (arg == "--socket") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      socketPath = v;
    } else if (arg == "--cache-dir") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      options.cacheDir = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (!v || !parseNum(v, &n) || n == 0 || n > 256) return usage(argv[0]);
      options.workers = static_cast<std::size_t>(n);
    } else if (arg == "--queue") {
      const char* v = value();
      if (!v || !parseNum(v, &n) || n == 0 || n > 65536) return usage(argv[0]);
      options.queueCapacity = static_cast<std::size_t>(n);
    } else if (arg == "--progress-interval") {
      const char* v = value();
      if (!v || !parseNum(v, &n) || n == 0) return usage(argv[0]);
      options.progressInterval = static_cast<std::size_t>(n);
    } else if (arg == "--cache-cap") {
      const char* v = value();
      if (!v || !parseNum(v, &n)) return usage(argv[0]);
      options.cacheCapacity = static_cast<std::size_t>(n);
    } else if (arg == "--faults") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      const std::string err = FaultInjector::global().configure(v);
      if (!err.empty()) {
        std::fprintf(stderr, "als_serve: %s\n", err.c_str());
        return 2;
      }
    } else {
      std::fprintf(stderr, "als_serve: unknown option '%s'\n", argv[i]);
      return usage(argv[0]);
    }
  }
  if (socketPath.empty()) return usage(argv[0]);
  if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
    std::fprintf(stderr, "als_serve: socket path too long\n");
    return 2;
  }

  // A client vanishing mid-RESULT must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  g_listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (g_listenFd < 0) {
    std::perror("als_serve: socket");
    return 1;
  }
  ::unlink(socketPath.c_str());  // replace a stale socket file
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  if (::bind(g_listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(g_listenFd, 64) < 0) {
    std::perror("als_serve: bind/listen");
    ::close(g_listenFd);
    return 1;
  }

  ServeEngine engine(options);
  std::fprintf(stderr,
               "als_serve: listening on %s (workers=%zu queue=%zu "
               "progress-interval=%zu cache=%s)\n",
               socketPath.c_str(), options.workers, options.queueCapacity,
               options.progressInterval,
               options.cacheDir.empty() ? "<memory>" : options.cacheDir.c_str());

  std::mutex connMutex;
  std::vector<std::shared_ptr<Connection>> connections;
  std::vector<std::thread> handlers;
  while (!g_stop.load()) {
    int fd = ::accept(g_listenFd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down (SHUTDOWN) or fatal
    }
    auto conn = std::make_shared<Connection>(fd);
    {
      std::lock_guard<std::mutex> lock(connMutex);
      connections.push_back(conn);
    }
    handlers.emplace_back(
        [&engine, conn = std::move(conn)] { handleConnection(engine, conn); });
  }

  // Wake any handler still blocked in read() on a connection its client
  // left open, then drain: every accepted job delivers its RESULT (the
  // connections stay writable — only their read side is shut down).
  {
    std::lock_guard<std::mutex> lock(connMutex);
    for (const auto& conn : connections) ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& t : handlers) t.join();
  engine.shutdown();
  connections.clear();
  ::close(g_listenFd);
  ::unlink(socketPath.c_str());
  std::fprintf(stderr, "als_serve: bye\n");
  return 0;
}
