// bench_diff — throughput- and quality-regression gate over bench_json
// record files (ROADMAP item 5 seed).
//
// Compares a committed baseline (BENCH_baseline.json at the repo root)
// against freshly captured --smoke records along two axes:
//
//   throughput  sweeps/seconds of the aggregated records of a pair — the
//               bench_decode rows carry decode/move counts in `sweeps`,
//               the als_place smoke rows carry SA sweep counts; both
//               divide by their wall clock into an operations-per-second
//               rate.  FAILs when a backend x circuit pair lost more than
//               --tol percent.
//   quality     the best (minimum) `cost` of a pair's records.  The smoke
//               budgets are fixed sweep counts, so baseline and current
//               run at EQUAL budget and a deterministic engine makes the
//               comparison exact; a pair whose best cost worsened by more
//               than --quality-tol percent FAILs.  Pairs where either side
//               has no cost-bearing record (cost 0 throughout — pure
//               timing or metric rows) are skipped.
//
// Pairs without timing (seconds or sweeps of 0, e.g. a pure determinism
// row) are compared for presence only, so the gate also catches silently
// dropped coverage.
//
//   bench_diff BENCH_baseline.json current.json [more.json ...]
//              [--tol 15] [--quality-tol 5] [--min-seconds 0.05]
//   bench_diff --merge BENCH_baseline.json decode.json place.json
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "util/flat_records.h"

namespace {

using als::FlatRecord;

bool loadRecords(const char* path, std::vector<FlatRecord>* out,
                 std::string* raw = nullptr) {
  std::string error;
  if (!als::loadFlatRecords(path, *out, error, raw)) {
    std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
    return false;
  }
  return true;
}

/// Aggregate of one backend x circuit pair: total operations (the records'
/// `sweeps`) over total wall clock, and the best cost any record achieved.
/// Summing ops/seconds first keeps the merge of bench_decode and als_place
/// rows for the same pair well-defined; taking the min cost makes the
/// quality number independent of how many captures were folded in.
struct PairStats {
  double ops = 0.0;
  double seconds = 0.0;
  double bestCost = std::numeric_limits<double>::infinity();
  std::size_t records = 0;

  bool timed() const { return ops > 0.0 && seconds > 0.0; }
  double opsPerSec() const { return timed() ? ops / seconds : 0.0; }
  bool costed() const {
    return bestCost < std::numeric_limits<double>::infinity();
  }
};

std::map<std::string, PairStats> aggregate(const std::vector<FlatRecord>& recs) {
  std::map<std::string, PairStats> out;
  for (const FlatRecord& r : recs) {
    auto backend = r.strings.find("backend");
    auto circuit = r.strings.find("circuit");
    if (backend == r.strings.end() || circuit == r.strings.end()) continue;
    PairStats& s = out[backend->second + " x " + circuit->second];
    s.ops += r.number("sweeps");
    s.seconds += r.number("seconds");
    double cost = r.number("cost");
    if (cost > 0.0 && cost < s.bestCost) s.bestCost = cost;
    ++s.records;
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json> [more.json ...] "
               "[--tol <pct>] [--quality-tol <pct>] [--min-seconds <s>]\n"
               "       bench_diff --merge <out.json> <in.json> [more.json ...]\n"
               "--tol gates ops/sec (default 15), --quality-tol gates the best "
               "cost at the shared smoke budget (default 5; deterministic "
               "engines make this exact); pairs whose aggregated wall clock is "
               "under --min-seconds (default 0.05) on either side are throughput-"
               "compared for presence only: a rate measured over a few "
               "milliseconds is timer noise, not signal\n");
  return 2;
}

/// --merge: concatenate record arrays verbatim into one file (how
/// BENCH_baseline.json is captured from the per-tool --json outputs —
/// including the quality-bearing serve rows from als_replay).
int merge(int argc, char** argv) {
  if (argc < 4) return usage();
  std::vector<FlatRecord> all;
  std::vector<std::string> raws;
  for (int i = 3; i < argc; ++i) {
    std::vector<FlatRecord> recs;
    std::string raw;
    if (!loadRecords(argv[i], &recs, &raw)) return 2;
    raws.push_back(std::move(raw));
    for (auto& r : recs) all.push_back(std::move(r));
  }
  std::string out = "[\n";
  bool first = true;
  for (const std::string& raw : raws) {
    // Re-emit each input's record lines between its outermost brackets; the
    // writer's one-record-per-line format makes this splice exact.
    std::size_t lo = raw.find('['), hi = raw.rfind(']');
    if (lo == std::string::npos || hi == std::string::npos || hi <= lo) continue;
    std::string body = raw.substr(lo + 1, hi - lo - 1);
    std::size_t a = body.find_first_not_of(" \t\n");
    std::size_t b = body.find_last_not_of(" \t\n");
    if (a == std::string::npos) continue;
    if (!first) out += ",\n";
    first = false;
    out += "  " + body.substr(a, b - a + 1);
  }
  out += "\n]\n";
  std::FILE* f = std::fopen(argv[2], "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open '%s' for writing\n", argv[2]);
    return 2;
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return 2;
  std::printf("bench_diff: merged %zu record(s) into %s\n", all.size(), argv[2]);
  return 0;
}

bool parsePct(const char* s, double* out, double hi) {
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !(v >= 0.0) || v >= hi) return false;
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--merge") == 0) return merge(argc, argv);

  double tolPct = 15.0;
  double qualityTolPct = 5.0;
  double minSeconds = 0.05;
  const char* baselinePath = nullptr;
  std::vector<const char*> currentPaths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0) {
      if (i + 1 >= argc || !parsePct(argv[++i], &tolPct, 100.0)) return usage();
    } else if (std::strcmp(argv[i], "--quality-tol") == 0) {
      // Quality tolerance may exceed 100%: cost is an absolute objective
      // value, not a rate, and a knowingly-noisy scenario may want slack.
      if (i + 1 >= argc || !parsePct(argv[++i], &qualityTolPct, 1e6)) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--min-seconds") == 0) {
      if (i + 1 >= argc || !parsePct(argv[++i], &minSeconds, 1e9)) {
        return usage();
      }
    } else if (baselinePath == nullptr) {
      baselinePath = argv[i];
    } else {
      currentPaths.push_back(argv[i]);
    }
  }
  if (baselinePath == nullptr || currentPaths.empty()) return usage();

  std::vector<FlatRecord> baseRecs, currRecs;
  if (!loadRecords(baselinePath, &baseRecs)) return 2;
  for (const char* path : currentPaths) {
    if (!loadRecords(path, &currRecs)) return 2;
  }
  std::map<std::string, PairStats> base = aggregate(baseRecs);
  std::map<std::string, PairStats> curr = aggregate(currRecs);

  int failures = 0;
  std::size_t compared = 0, presenceOnly = 0, qualityCompared = 0;
  for (const auto& [key, b] : base) {
    auto it = curr.find(key);
    if (it == curr.end()) {
      std::fprintf(stderr, "bench_diff: FAIL %s: present in baseline, missing "
                           "from current run (coverage regression)\n",
                   key.c_str());
      ++failures;
      continue;
    }
    const PairStats& c = it->second;

    // Quality: best cost at the shared smoke budget.  Only meaningful when
    // both sides carry cost-bearing records.
    if (b.costed() && c.costed()) {
      ++qualityCompared;
      double ceiling = b.bestCost * (1.0 + qualityTolPct / 100.0);
      if (c.bestCost > ceiling) {
        std::fprintf(stderr,
                     "bench_diff: FAIL %s: best cost %.6g vs baseline %.6g "
                     "(+%.2f%%, quality tolerance %.1f%%)\n",
                     key.c_str(), c.bestCost, b.bestCost,
                     100.0 * (c.bestCost / b.bestCost - 1.0), qualityTolPct);
        ++failures;
      }
    }

    if (!b.timed() || !c.timed() || b.seconds < minSeconds ||
        c.seconds < minSeconds) {
      ++presenceOnly;
      continue;
    }
    ++compared;
    double floor = b.opsPerSec() * (1.0 - tolPct / 100.0);
    if (c.opsPerSec() < floor) {
      std::fprintf(stderr,
                   "bench_diff: FAIL %s: %.0f ops/s vs baseline %.0f ops/s "
                   "(-%.1f%%, tolerance %.0f%%)\n",
                   key.c_str(), c.opsPerSec(), b.opsPerSec(),
                   100.0 * (1.0 - c.opsPerSec() / b.opsPerSec()), tolPct);
      ++failures;
    }
  }
  std::printf("bench_diff: %zu pair(s) compared at %.0f%% tolerance, %zu "
              "quality-compared at %.1f%%, %zu presence-only, %d failure(s)\n",
              compared, tolPct, qualityCompared, qualityTolPct, presenceOnly,
              failures);
  return failures == 0 ? 0 : 1;
}
