// bench_diff — throughput-regression gate over bench_json record files
// (ROADMAP item 5 seed).
//
// Compares a committed baseline (BENCH_baseline.json at the repo root)
// against freshly captured --smoke records and fails when any
// backend x circuit pair lost more than --tol percent of its throughput.
// Throughput is sweeps/seconds of the aggregated records of a pair: the
// bench_decode rows carry decode/move counts in `sweeps`, the als_place
// smoke rows carry SA sweep counts — both divide by their wall clock into
// an operations-per-second rate.  Pairs without timing (seconds or sweeps
// of 0, e.g. a pure determinism row) are compared for presence only, so
// the gate also catches silently dropped coverage.
//
//   bench_diff BENCH_baseline.json current.json [more.json ...] [--tol 15]
//   bench_diff --merge BENCH_baseline.json decode.json place.json
//
// The parser reads exactly the flat {"key": value} record arrays
// util/bench_json.cpp writes; it is not a general JSON reader.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

struct FlatRecord {
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;
};

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  void skipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }
  bool expect(char c) {
    skipWs();
    if (pos >= text.size() || text[pos] != c) {
      error = "expected '" + std::string(1, c) + "' at offset " + std::to_string(pos);
      return false;
    }
    ++pos;
    return true;
  }
  bool peek(char c) {
    skipWs();
    return pos < text.size() && text[pos] == c;
  }
  bool parseString(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      char c = text[pos++];
      if (c == '\\' && pos < text.size()) {
        // bench_json only escapes ", \, \n, \t and control bytes; \uXXXX is
        // passed through verbatim (keys never contain it).
        char e = text[pos++];
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: out->push_back(e);
        }
      } else {
        out->push_back(c);
      }
    }
    return expect('"');
  }
  bool parseNumber(double* out) {
    skipWs();
    const char* start = text.data() + pos;
    char* end = nullptr;
    errno = 0;
    double v = std::strtod(start, &end);
    if (end == start || errno == ERANGE) {
      error = "bad number at offset " + std::to_string(pos);
      return false;
    }
    pos += static_cast<std::size_t>(end - start);
    *out = v;
    return true;
  }
  bool parseRecord(FlatRecord* out) {
    if (!expect('{')) return false;
    if (peek('}')) return expect('}');
    while (true) {
      std::string key;
      if (!parseString(&key) || !expect(':')) return false;
      skipWs();
      if (peek('"')) {
        std::string v;
        if (!parseString(&v)) return false;
        out->strings[key] = std::move(v);
      } else {
        double v = 0.0;
        if (!parseNumber(&v)) return false;
        out->numbers[key] = v;
      }
      if (peek(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect('}');
    }
  }
  bool parseArray(std::vector<FlatRecord>* out) {
    if (!expect('[')) return false;
    if (peek(']')) return expect(']');
    while (true) {
      FlatRecord r;
      if (!parseRecord(&r)) return false;
      out->push_back(std::move(r));
      if (peek(',')) {
        if (!expect(',')) return false;
        continue;
      }
      return expect(']');
    }
  }
};

bool loadRecords(const char* path, std::vector<FlatRecord>* out,
                 std::string* raw = nullptr) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open '%s'\n", path);
    return false;
  }
  std::string text;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  Parser p{text, 0, {}};
  if (!p.parseArray(out)) {
    std::fprintf(stderr, "bench_diff: %s: %s\n", path, p.error.c_str());
    return false;
  }
  if (raw != nullptr) *raw = std::move(text);
  return true;
}

/// Aggregate of one backend x circuit pair: total operations (the records'
/// `sweeps`) over total wall clock.  Summing first keeps the merge of
/// bench_decode and als_place rows for the same pair well-defined.
struct PairStats {
  double ops = 0.0;
  double seconds = 0.0;
  std::size_t records = 0;

  bool timed() const { return ops > 0.0 && seconds > 0.0; }
  double opsPerSec() const { return timed() ? ops / seconds : 0.0; }
};

std::map<std::string, PairStats> aggregate(const std::vector<FlatRecord>& recs) {
  std::map<std::string, PairStats> out;
  for (const FlatRecord& r : recs) {
    auto backend = r.strings.find("backend");
    auto circuit = r.strings.find("circuit");
    if (backend == r.strings.end() || circuit == r.strings.end()) continue;
    PairStats& s = out[backend->second + " x " + circuit->second];
    auto num = [&](const char* key) {
      auto it = r.numbers.find(key);
      return it == r.numbers.end() ? 0.0 : it->second;
    };
    s.ops += num("sweeps");
    s.seconds += num("seconds");
    ++s.records;
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_diff <baseline.json> <current.json> [more.json ...] "
               "[--tol <pct>] [--min-seconds <s>]\n"
               "       bench_diff --merge <out.json> <in.json> [more.json ...]\n"
               "pairs whose aggregated wall clock is under --min-seconds (default "
               "0.05) on either side are compared for presence only: a rate "
               "measured over a few milliseconds is timer noise, not signal\n");
  return 2;
}

/// --merge: concatenate record arrays verbatim into one file (how
/// BENCH_baseline.json is captured from the per-tool --json outputs).
int merge(int argc, char** argv) {
  if (argc < 4) return usage();
  std::vector<FlatRecord> all;
  std::vector<std::string> raws;
  for (int i = 3; i < argc; ++i) {
    std::vector<FlatRecord> recs;
    std::string raw;
    if (!loadRecords(argv[i], &recs, &raw)) return 2;
    raws.push_back(std::move(raw));
    for (auto& r : recs) all.push_back(std::move(r));
  }
  std::string out = "[\n";
  bool first = true;
  for (const std::string& raw : raws) {
    // Re-emit each input's record lines between its outermost brackets; the
    // writer's one-record-per-line format makes this splice exact.
    std::size_t lo = raw.find('['), hi = raw.rfind(']');
    if (lo == std::string::npos || hi == std::string::npos || hi <= lo) continue;
    std::string body = raw.substr(lo + 1, hi - lo - 1);
    std::size_t a = body.find_first_not_of(" \t\n");
    std::size_t b = body.find_last_not_of(" \t\n");
    if (a == std::string::npos) continue;
    if (!first) out += ",\n";
    first = false;
    out += "  " + body.substr(a, b - a + 1);
  }
  out += "\n]\n";
  std::FILE* f = std::fopen(argv[2], "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_diff: cannot open '%s' for writing\n", argv[2]);
    return 2;
  }
  bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) return 2;
  std::printf("bench_diff: merged %zu record(s) into %s\n", all.size(), argv[2]);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--merge") == 0) return merge(argc, argv);

  double tolPct = 15.0;
  double minSeconds = 0.05;
  const char* baselinePath = nullptr;
  std::vector<const char*> currentPaths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tol") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      tolPct = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(tolPct >= 0.0) || tolPct >= 100.0) {
        return usage();
      }
    } else if (std::strcmp(argv[i], "--min-seconds") == 0) {
      if (i + 1 >= argc) return usage();
      char* end = nullptr;
      minSeconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(minSeconds >= 0.0)) {
        return usage();
      }
    } else if (baselinePath == nullptr) {
      baselinePath = argv[i];
    } else {
      currentPaths.push_back(argv[i]);
    }
  }
  if (baselinePath == nullptr || currentPaths.empty()) return usage();

  std::vector<FlatRecord> baseRecs, currRecs;
  if (!loadRecords(baselinePath, &baseRecs)) return 2;
  for (const char* path : currentPaths) {
    if (!loadRecords(path, &currRecs)) return 2;
  }
  std::map<std::string, PairStats> base = aggregate(baseRecs);
  std::map<std::string, PairStats> curr = aggregate(currRecs);

  int failures = 0;
  std::size_t compared = 0, presenceOnly = 0;
  for (const auto& [key, b] : base) {
    auto it = curr.find(key);
    if (it == curr.end()) {
      std::fprintf(stderr, "bench_diff: FAIL %s: present in baseline, missing "
                           "from current run (coverage regression)\n",
                   key.c_str());
      ++failures;
      continue;
    }
    const PairStats& c = it->second;
    if (!b.timed() || !c.timed() || b.seconds < minSeconds ||
        c.seconds < minSeconds) {
      ++presenceOnly;
      continue;
    }
    ++compared;
    double floor = b.opsPerSec() * (1.0 - tolPct / 100.0);
    if (c.opsPerSec() < floor) {
      std::fprintf(stderr,
                   "bench_diff: FAIL %s: %.0f ops/s vs baseline %.0f ops/s "
                   "(-%.1f%%, tolerance %.0f%%)\n",
                   key.c_str(), c.opsPerSec(), b.opsPerSec(),
                   100.0 * (1.0 - c.opsPerSec() / b.opsPerSec()), tolPct);
      ++failures;
    }
  }
  std::printf("bench_diff: %zu pair(s) compared at %.0f%% tolerance, %zu "
              "presence-only, %d failure(s)\n",
              compared, tolPct, presenceOnly, failures);
  return failures == 0 ? 0 : 1;
}
