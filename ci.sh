#!/usr/bin/env bash
# CI entry point: tier-1 verify, sanitizer jobs, and a bench smoke run.
#
# The ASan/UBSan suite is run TWICE on purpose: together with the sweep-
# budgeted (wall-clock-independent) annealing contract, two identical passes
# catch the class of bug where SA results silently depend on machine load or
# sanitizer slowdown.  The TSan config guards the runtime layer (thread
# pool + restart portfolio): runtime_test exercises 8-thread fork-joins and
# multi-backend races under instrumentation.
#
# The final stage runs every plain bench binary from the Release build in
# its --smoke configuration (fixed sweep budgets, so deterministic) with
# JSON records written to build/bench-smoke/ — per-PR observability for
# perf and quality regressions.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest (Release) ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "=== sanitizers: ASan + UBSan build, suite run twice ==="
cmake -B build-asan -S . -DALS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "=== sanitizers: TSan build (runtime-layer concurrency) ==="
cmake -B build-tsan -S . -DALS_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$JOBS"
(cd build-tsan && ctest --output-on-failure -j "$JOBS")
# Explicit concurrency gates under TSan: the runtime layer's fork-joins and
# the cost layer's shared-circuit model independence (cost_test's threaded
# suite).  Both already ran in the full pass above; re-running them serially
# keeps the two concurrency contracts visible as their own CI signal.
(cd build-tsan && ctest --output-on-failure -R '^(cost_test|runtime_test)$')
# Tempering under TSan, as its own leg: the round-barrier exchange loop and
# the cross-backend reseed path are the only places replicas touch shared
# state mid-run, so their thread-invariance suites get a dedicated
# instrumented pass.
./build-tsan/runtime_test --gtest_filter='Tempering.*'
# Serve layer under both sanitizers, as its own leg: the deadline monitor
# thread, the shared result cache (quarantine/eviction under the store
# mutex) and the worker fan-out are the serve stack's concurrency surface,
# and its recovery paths (checksum rejection, scrub, fault-injected torn
# writes) are exactly where memory bugs would hide.  Both binaries already
# ran in the full ctest passes above; the explicit invocations keep the
# failure-model contract visible as its own CI signal.
./build-asan/serve_test
./build-tsan/serve_test

echo "=== alloc gate: Release steady-state zero-allocations-per-move ==="
# One warm anneal per backend under the counting operator new of
# tests/alloc_gate_test.cpp; fails if the SA move loop (move + decode +
# incremental cost) allocates at all in steady state.  Runs in the plain
# ctest pass too; the explicit invocation keeps the decode-hot-path
# contract visible as its own CI signal.
(cd build && ctest --output-on-failure -R '^alloc_gate_test$')

echo "=== bench smoke: Release binaries, JSON to build/bench-smoke/ ==="
mkdir -p build/bench-smoke
for bench in bench_table1 bench_fig8 bench_fig10 bench_lemma bench_ablation \
             bench_thermal bench_seqpair_sa bench_hbstar bench_slicing \
             bench_portfolio bench_decode; do
  echo "--- $bench --smoke ---"
  ./build/"$bench" --smoke --json "build/bench-smoke/$bench.json" \
    > "build/bench-smoke/$bench.out"
done
# bench_kernels is google-benchmark based (built only when the library is
# present) and has its own machine-readable flag.  (min_time is passed
# unit-less: the distro's google-benchmark predates the "0.01s" suffix
# syntax and rejects it.)
if [ -x build/bench_kernels ]; then
  ./build/bench_kernels --benchmark_min_time=0.01 \
    --benchmark_out=build/bench-smoke/bench_kernels.json \
    --benchmark_out_format=json > build/bench-smoke/bench_kernels.out
fi

echo "=== bench_decode --scaling: partial/incremental vs full re-decode ==="
# The asymptotics gate: re-runs flat-bstar and seqpair on every corpus
# circuit up to n300 with the suffix-only decode paths OFF and ON, verifies
# the two trajectories are bit-identical (any divergence exits nonzero),
# cross-checks all three LCS strategies against the incremental run, and
# records moves/sec rows per (path, circuit) for bench_diff.
for rep in "" .r2 .r3; do
  ./build/bench_decode --scaling --smoke \
    --json "build/bench-smoke/bench_decode_scaling$rep.json" \
    > "build/bench-smoke/bench_decode_scaling$rep.out"
done

echo "=== als_place smoke: corpus x backends determinism gate ==="
# Places every embedded corpus circuit on all four backends, twice and at
# 1 vs 8 threads — plus the scenario legs (thermal objective + shape moves,
# and the --size sizing-on-portfolio flow); exits nonzero on any parse
# error, illegal placement or bit-level mismatch.
./build/als_place --smoke --json build/bench-smoke/als_place.json \
  > build/bench-smoke/als_place.out

echo "=== als_serve smoke: daemon + replay, identity / cache / cancel ==="
# Boots the placement daemon and fires the replay harness at it: apte and
# ami33 jobs with duplicate resubmissions, run at 1 client and again at 8
# concurrent clients.  --check asserts the three service contracts — the
# two rounds' per-job results are byte-identical (and match an in-process
# PortfolioRunner oracle), the duplicate stream produces a nonzero cache
# hit rate with a >= 50x warm-over-cold speedup, and a job cancelled
# mid-run is acknowledged within a bounded number of progress rounds with
# the worker then completing a fresh job bit-identically.  The JSON lands
# next to the other smoke records and feeds bench_diff coverage below.
./build/als_replay --serve-bin ./build/als_serve --check --clients 8 \
  --json build/bench-smoke/bench_serve.json \
  > build/bench-smoke/bench_serve.out

echo "=== als_replay --faults: chaos harness (crash/corruption recovery) ==="
# Drives the daemon through the full failure model with deterministic fault
# injection: on-disk entries bit-flipped, truncated and mislabeled (must be
# quarantined, never served, recomputed byte-identically against the
# in-process oracle); a full disk (memory-only degradation); _Exit crashes
# in every store/reply window plus a SIGKILL mid-job (restart scrubs and
# recovers); wall and sweep deadlines (best-so-far within one round, never
# cached); backpressure with retry/backoff clients; and the size cap
# (eviction keeps the store directory bounded).  No --json on purpose: the
# chaos run measures recovery, not throughput, so it stays out of
# bench_diff.
./build/als_replay --serve-bin ./build/als_serve --faults --check \
  > build/bench-smoke/bench_chaos.out

echo "=== readme_tables --check: README tables vs committed baseline ==="
# The README's measured-throughput tables are generated from
# BENCH_baseline.json; drift (hand edits, or a baseline refresh without
# regenerating) fails CI.  Refresh with: ./build/readme_tables
./build/readme_tables --check

echo "=== bench_diff: throughput + quality vs committed BENCH_baseline.json ==="
# Fails on a moves/sec regression of any backend x circuit pair against the
# committed baseline (ROADMAP item 5).  The smoke budgets keep every pair
# in the milliseconds range, so two extra captures are folded in —
# bench_diff aggregates ops and seconds per pair, averaging the runs — and
# the default tolerance here is wider than the tool's 15% default, which
# is meant for dedicated hardware with longer budgets.  Refresh the
# baseline on intentional perf changes or hardware moves with:
#   ./build/bench_diff --merge BENCH_baseline.json \
#     build/bench-smoke/bench_decode*.json build/bench-smoke/als_place*.json \
#     build/bench-smoke/bench_serve.json
# (the glob picks up the bench_decode_scaling captures too, so the
# full-vs-partial decode rows stay covered; bench_serve.json carries the
# serve identity/quality rows and the service-level meta metrics) — then
# regenerate the README tables: ./build/readme_tables
for rep in 2 3; do
  ./build/bench_decode --smoke --json "build/bench-smoke/bench_decode.r$rep.json" \
    > /dev/null
  ./build/als_place --smoke --json "build/bench-smoke/als_place.r$rep.json" \
    > /dev/null
done
./build/bench_diff --tol "${BENCH_DIFF_TOL:-40}" \
  --quality-tol "${BENCH_DIFF_QUALITY_TOL:-5}" BENCH_baseline.json \
  build/bench-smoke/bench_decode.json build/bench-smoke/bench_decode.r2.json \
  build/bench-smoke/bench_decode.r3.json \
  build/bench-smoke/bench_decode_scaling.json \
  build/bench-smoke/bench_decode_scaling.r2.json \
  build/bench-smoke/bench_decode_scaling.r3.json \
  build/bench-smoke/als_place.json build/bench-smoke/als_place.r2.json \
  build/bench-smoke/als_place.r3.json build/bench-smoke/bench_portfolio.json \
  build/bench-smoke/bench_serve.json

echo "=== CI green ==="
