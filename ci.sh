#!/usr/bin/env bash
# CI entry point: tier-1 verify plus an ASan/UBSan job.
#
# The sanitizer suite is run TWICE on purpose: together with the sweep-
# budgeted (wall-clock-independent) annealing contract, two identical passes
# catch the class of bug where SA results silently depend on machine load or
# sanitizer slowdown.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest (Release) ==="
cmake -B build -S .
cmake --build build -j "$JOBS"
(cd build && ctest --output-on-failure -j "$JOBS")

echo "=== sanitizers: ASan + UBSan build, suite run twice ==="
cmake -B build-asan -S . -DALS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$JOBS"
(cd build-asan && ctest --output-on-failure -j "$JOBS")
(cd build-asan && ctest --output-on-failure -j "$JOBS")

echo "=== CI green ==="
