// Layout-aware sizing (Section V): size a folded-cascode OTA twice — once
// electrically blind, once with template generation + parasitic extraction
// inside every cost evaluation — and compare the post-layout outcome.  The
// closing stage re-hosts the sizing loop on the runtime layer: several
// independently seeded Miller candidates are sized, annotated, and placed
// in parallel through the deterministic batch placer
// (layoutaware/placed_sizing.h), and one winner is reduced out.
#include <cstdio>

#include "layoutaware/placed_sizing.h"
#include "layoutaware/sizing.h"

using namespace als;

namespace {

void report(const char* label, const SizingResult& r, const OtaSpecs& specs) {
  std::printf("--- %s ---\n", label);
  std::printf("design: Ib=%.0f uA  W1=%.1f um (m=%d)  Wp=%.1f um (m=%d)  "
              "Wn=%.1f um (m=%d)\n",
              r.design.ib * 1e6, r.design.w1 * 1e6, r.design.m1,
              r.design.wp * 1e6, r.design.mp, r.design.wn * 1e6, r.design.mn);
  std::printf("layout: %.1f x %.1f um  (area %.0f um^2, aspect %.2f)\n",
              static_cast<double>(r.layout.width) / 1000.0,
              static_cast<double>(r.layout.height) / 1000.0, r.layout.areaUm2(),
              r.layout.aspectRatio());
  auto line = [](const char* name, double sized, double extracted, double target,
                 const char* unit, bool atLeast) {
    bool ok = atLeast ? extracted >= target : extracted <= target;
    std::printf("  %-14s sized %8.2f -> extracted %8.2f %-5s (target %s%.2f) %s\n",
                name, sized, extracted, unit, atLeast ? ">= " : "<= ", target,
                ok ? "met" : "VIOLATED");
  };
  line("dc gain", r.perfSizing.gainDb, r.perfExtracted.gainDb, specs.minGainDb,
       "dB", true);
  line("GBW", r.perfSizing.gbwHz / 1e6, r.perfExtracted.gbwHz / 1e6,
       specs.minGbwHz / 1e6, "MHz", true);
  line("phase margin", r.perfSizing.pmDeg, r.perfExtracted.pmDeg, specs.minPmDeg,
       "deg", true);
  line("slew rate", r.perfSizing.srVps / 1e6, r.perfExtracted.srVps / 1e6,
       specs.minSrVps / 1e6, "V/us", true);
  line("power", r.perfSizing.powerW * 1e3, r.perfExtracted.powerW * 1e3,
       specs.maxPowerW * 1e3, "mW", false);
  std::printf("  all specs met post-layout: %s\n",
              r.meetsSpecsExtracted ? "YES" : "no");
  std::printf("  sizing time %.1fs, extraction share %.1f%% (%zu evaluations)\n\n",
              r.seconds, r.extractShare * 100.0, r.evaluations);
}

}  // namespace

int main() {
  Technology tech = Technology::c035();
  OtaSpecs specs;

  SizingOptions blind;
  blind.layoutAware = false;
  blind.seed = 4;
  report("electrical-only sizing (parasitic-blind)", runSizing(tech, specs, blind),
         specs);

  SizingOptions aware;
  aware.layoutAware = true;
  aware.seed = 4;
  report("layout-aware sizing (template + extraction in the loop)",
         runSizing(tech, specs, aware), specs);

  // Portfolio-hosted flow: the same layout-aware loop, several seeds at a
  // time, each candidate placed through the engine facade with the thermal
  // objective and the capacitor shape curve enabled.  Deterministic across
  // thread counts (BatchPlacer's 1-vs-N contract).
  std::puts("--- portfolio-hosted placed sizing (Miller, 3 candidates) ---");
  OtaSpecs millerSpecs;
  millerSpecs.minGainDb = 70.0;
  millerSpecs.minGbwHz = 15e6;
  millerSpecs.minPmDeg = 55.0;
  millerSpecs.minSrVps = 10e6;
  PlacedSizingOptions popt;
  popt.sizing.layoutAware = true;
  popt.sizing.seed = 4;
  popt.numCandidates = 3;
  popt.placement.maxSweeps = 120;
  popt.placement.numRestarts = 2;
  popt.placement.numThreads = 4;
  popt.placement.thermalWeight = 1.0;
  popt.placement.shapeMoveProb = 0.1;
  PlacedSizingResult flow = runMillerPlacedSizing(tech, millerSpecs, popt);
  for (std::size_t i = 0; i < flow.candidates.size(); ++i) {
    const PlacedSizingCandidate& cand = flow.candidates[i];
    std::printf("  candidate %zu: specs %s (violation %.3f), placement cost "
                "%.4g, area %.0f um^2%s\n",
                i, cand.sizing.meetsSpecsExtracted ? "met" : "not met",
                cand.sizing.violationExtracted, cand.placement.cost,
                static_cast<double>(cand.placement.area) * 1e-6,
                i == flow.bestIndex ? "  <- winner" : "");
  }
  std::printf("  flow total %.1fs (sizing + parallel placement)\n",
              flow.seconds);
  return 0;
}
