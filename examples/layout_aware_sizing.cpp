// Layout-aware sizing (Section V): size a folded-cascode OTA twice — once
// electrically blind, once with template generation + parasitic extraction
// inside every cost evaluation — and compare the post-layout outcome.
#include <cstdio>

#include "layoutaware/sizing.h"

using namespace als;

namespace {

void report(const char* label, const SizingResult& r, const OtaSpecs& specs) {
  std::printf("--- %s ---\n", label);
  std::printf("design: Ib=%.0f uA  W1=%.1f um (m=%d)  Wp=%.1f um (m=%d)  "
              "Wn=%.1f um (m=%d)\n",
              r.design.ib * 1e6, r.design.w1 * 1e6, r.design.m1,
              r.design.wp * 1e6, r.design.mp, r.design.wn * 1e6, r.design.mn);
  std::printf("layout: %.1f x %.1f um  (area %.0f um^2, aspect %.2f)\n",
              static_cast<double>(r.layout.width) / 1000.0,
              static_cast<double>(r.layout.height) / 1000.0, r.layout.areaUm2(),
              r.layout.aspectRatio());
  auto line = [](const char* name, double sized, double extracted, double target,
                 const char* unit, bool atLeast) {
    bool ok = atLeast ? extracted >= target : extracted <= target;
    std::printf("  %-14s sized %8.2f -> extracted %8.2f %-5s (target %s%.2f) %s\n",
                name, sized, extracted, unit, atLeast ? ">= " : "<= ", target,
                ok ? "met" : "VIOLATED");
  };
  line("dc gain", r.perfSizing.gainDb, r.perfExtracted.gainDb, specs.minGainDb,
       "dB", true);
  line("GBW", r.perfSizing.gbwHz / 1e6, r.perfExtracted.gbwHz / 1e6,
       specs.minGbwHz / 1e6, "MHz", true);
  line("phase margin", r.perfSizing.pmDeg, r.perfExtracted.pmDeg, specs.minPmDeg,
       "deg", true);
  line("slew rate", r.perfSizing.srVps / 1e6, r.perfExtracted.srVps / 1e6,
       specs.minSrVps / 1e6, "V/us", true);
  line("power", r.perfSizing.powerW * 1e3, r.perfExtracted.powerW * 1e3,
       specs.maxPowerW * 1e3, "mW", false);
  std::printf("  all specs met post-layout: %s\n",
              r.meetsSpecsExtracted ? "YES" : "no");
  std::printf("  sizing time %.1fs, extraction share %.1f%% (%zu evaluations)\n\n",
              r.seconds, r.extractShare * 100.0, r.evaluations);
}

}  // namespace

int main() {
  Technology tech = Technology::c035();
  OtaSpecs specs;

  SizingOptions blind;
  blind.layoutAware = false;
  blind.seed = 4;
  report("electrical-only sizing (parasitic-blind)", runSizing(tech, specs, blind),
         specs);

  SizingOptions aware;
  aware.layoutAware = true;
  aware.seed = 4;
  report("layout-aware sizing (template + extraction in the loop)",
         runSizing(tech, specs, aware), specs);
  return 0;
}
