// Hierarchical placement with layout constraints (Section III): the Fig. 2
// design — hierarchical symmetry over device pairs and mirrored
// common-centroid arrays, plus a proximity sub-circuit — placed with the
// HB*-tree annealer.  Every constraint holds by construction and is
// re-verified geometrically afterwards.
#include <cstdio>

#include "bstar/common_centroid.h"
#include "bstar/hbstar.h"
#include "netlist/generators.h"
#include "seqpair/sym_placer.h"

using namespace als;

int main() {
  Circuit circuit = makeFig2Design();
  const HierTree& hier = circuit.hierarchy();
  std::printf("design '%s': %zu modules, hierarchy depth %zu, %zu basic sets\n\n",
              circuit.name().c_str(), circuit.moduleCount(), hier.depth(),
              hier.basicSetCount());

  for (HierNodeId id = 0; id < hier.nodeCount(); ++id) {
    const HierNode& node = hier.node(id);
    if (!node.isLeaf() && node.constraint != GroupConstraint::None) {
      std::printf("sub-circuit %-5s constraint: %s (%zu modules)\n",
                  node.name.c_str(), toString(node.constraint),
                  hier.leavesUnder(id).size());
    }
  }

  HBPlacerOptions options;
  options.maxSweeps = 400;
  options.seed = 2;
  HBPlacerResult result = placeHBStarSA(circuit, options);

  std::printf("\narea   : %.0f um^2 (module area %.0f um^2)\n",
              static_cast<double>(result.area) * 1e-6,
              static_cast<double>(circuit.totalModuleArea()) * 1e-6);
  std::printf("HPWL   : %.1f um\n", static_cast<double>(result.hpwl) / 1000.0);
  std::printf("legal  : %s\n", result.placement.isLegal() ? "yes" : "no");

  // Verify each constraint kind explicitly.
  bool symmetryOk = verifySymmetry(result.placement, circuit.symmetryGroups(),
                                   result.axis2x);
  std::printf("symmetry (incl. hierarchical, D/E pair + mirrored H/I arrays): %s\n",
              symmetryOk ? "exact" : "VIOLATED");
  for (HierNodeId id = 0; id < hier.nodeCount(); ++id) {
    const HierNode& node = hier.node(id);
    if (node.isLeaf()) continue;
    std::vector<Rect> rects;
    for (ModuleId m : hier.leavesUnder(id)) rects.push_back(result.placement[m]);
    if (node.constraint == GroupConstraint::Proximity) {
      std::printf("proximity '%s' (common well region): %s\n", node.name.c_str(),
                  isConnectedRegion(rects) ? "connected" : "DISCONNECTED");
    }
    if (node.constraint == GroupConstraint::CommonCentroid) {
      std::printf("common-centroid '%s': gridded unit array, connected: %s\n",
                  node.name.c_str(),
                  isConnectedRegion(rects) ? "yes" : "NO");
    }
  }
  std::printf("\n%s", asciiArt(result.placement, circuit.moduleNames(), 64).c_str());
  return 0;
}
