// Parallel restart portfolios over the engine facade (runtime layer).
//
// Shows the three runtime entry points on paper circuits:
//   1. PortfolioRunner::run  — one backend, N seed-split restarts over all
//      cores, deterministically reduced (bit-identical at any thread count);
//   2. PortfolioRunner::race — all four backends race, winner by the
//      (cost, seed, backend) tie-break;
//   3. BatchPlacer           — a batch of circuits placed in one fork-join.
//
// Build & run:
//   cmake -B build && cmake --build build -j
//   ./build/parallel_portfolio
#include <cstdio>
#include <thread>

#include "netlist/generators.h"
#include "runtime/portfolio.h"

using namespace als;

int main() {
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  // 1. Restart portfolio of one backend.  maxSweeps is the TOTAL budget:
  //    it is split into numRestarts slices, each annealing from its own
  //    seed of the deterministic restart schedule.
  Circuit c = makeMillerOpAmp();
  EngineOptions opt;
  opt.maxSweeps = 512;
  opt.numRestarts = 8;
  opt.numThreads = 0;  // 0 = all hardware threads
  opt.seed = 1;

  PortfolioRunner runner;
  EngineResult r = runner.run(c, EngineBackend::SeqPair, opt);
  std::printf("seqpair portfolio: %zu restarts, best is #%zu (seed %llu)\n",
              r.restartsRun, r.bestRestart,
              static_cast<unsigned long long>(r.bestSeed));
  // (seconds is wall clock and deliberately not printed: example stdout
  // stays byte-identical run to run, like every other example.)
  std::printf("  area %.0f um^2, HPWL %.1f um, %zu sweeps total\n\n",
              static_cast<double>(r.area) * 1e-6,
              static_cast<double>(r.hpwl) / 1000.0, r.sweeps);

  // 2. Whole-backend race: every backend runs its own portfolio of the
  //    same budget; the flattened backend x restart grid shares the pool.
  PortfolioRunner::RaceOutcome race = runner.race(c, allBackends(), opt);
  std::printf("backend race winner: %s (cost %.3g, restart #%zu)\n\n",
              backendName(race.backend).data(), race.result.cost,
              race.result.bestRestart);

  // 3. Batch placement: many circuits, one fork-join over the pool.
  std::vector<Circuit> batch;
  batch.push_back(makeFig1Example());
  batch.push_back(makeMillerOpAmp());
  batch.push_back(makeTableICircuit(TableICircuit::ComparatorV2));
  BatchPlacer placer;
  std::vector<EngineResult> results =
      placer.placeAll(batch, EngineBackend::SeqPair, opt);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::printf("batch[%zu] %-14s area %.0f um^2  (best restart #%zu)\n", i,
                batch[i].name().c_str(),
                static_cast<double>(results[i].area) * 1e-6,
                results[i].bestRestart);
  }
  std::puts("\nresults are bit-identical for numThreads = 1 and N -- the\n"
            "runtime determinism contract (see tests/runtime_test.cpp).");
  return 0;
}
