// End-to-end flow on the paper's Fig. 6 circuit — the Miller op amp —
// chaining three of the library's subsystems:
//
//   1. Section V:   layout-aware electrical sizing of the op amp
//                   (template + extraction inside the loop);
//   2. Section IV:  deterministic placement of the Fig. 6 netlist by
//                   hierarchically bounded enumeration (DP / CM1 / CM2
//                   basic sets) with enhanced shape functions;
//   3. Section II:  thermal verification — the output driver N8 dissipates
//                   most of the power; the placement's symmetric pairs are
//                   checked for temperature mismatch.
#include <cstdio>

#include "layoutaware/miller.h"
#include "netlist/generators.h"
#include "shapefn/deterministic.h"
#include "shapefn/enumerate.h"
#include "thermal/thermal.h"

using namespace als;

int main() {
  Technology tech = Technology::c035();

  // --- 1. layout-aware sizing ---
  OtaSpecs specs;
  specs.minGainDb = 70.0;
  specs.minGbwHz = 15e6;
  specs.minPmDeg = 55.0;
  specs.minSrVps = 10e6;
  SizingOptions opt;
  opt.layoutAware = true;
  opt.seed = 6;
  MillerSizingResult sized = runMillerSizing(tech, specs, opt);
  std::printf("sizing: gain %.1f dB, GBW %.1f MHz, PM %.1f deg, SR %.1f V/us, "
              "power %.2f mW -> specs %s\n",
              sized.perfExtracted.gainDb, sized.perfExtracted.gbwHz / 1e6,
              sized.perfExtracted.pmDeg, sized.perfExtracted.srVps / 1e6,
              sized.perfExtracted.powerW * 1e3,
              sized.meetsSpecsExtracted ? "met (with parasitics)" : "NOT met");
  std::printf("template: %.1f x %.1f um, %zu cells\n\n",
              static_cast<double>(sized.layout.width) / 1000.0,
              static_cast<double>(sized.layout.height) / 1000.0,
              sized.layout.cells.size());

  // --- 2. deterministic placement of the Fig. 6 hierarchy ---
  Circuit c = makeMillerOpAmp();
  DeterministicResult placed = placeDeterministic(c, {});
  std::printf("deterministic placement: area %.0f um^2, usage %.2f%%, legal %s\n",
              static_cast<double>(placed.area) * 1e-6, placed.areaUsage * 100.0,
              placed.placement.isLegal() ? "yes" : "no");
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    std::printf("  %-4s %s\n", g.name.c_str(),
                mirrorAxisOf(placed.placement, g) ? "mirrored exactly"
                                                  : "VIOLATED");
  }

  // --- 3. thermal check: N8 (module 7) radiates the output-stage power ---
  std::vector<double> power(c.moduleCount(), 0.0);
  power[7] = sized.perfExtracted.powerW * 0.7;  // driver burns most of it
  ThermalField field(sourcesFromPlacement(placed.placement, power));
  std::puts("\nthermal mismatch across matched pairs (N8 radiating):");
  for (const SymmetryGroup& g : c.symmetryGroups()) {
    auto mm = pairTemperatureMismatch(placed.placement, g, field);
    for (std::size_t i = 0; i < mm.size(); ++i) {
      std::printf("  %-4s pair %zu: dT = %.4f K\n", g.name.c_str(), i, mm[i]);
    }
  }
  std::printf("\n%s", asciiArt(placed.placement, c.moduleNames(), 56).c_str());
  return 0;
}
