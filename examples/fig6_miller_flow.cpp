// End-to-end flow on the paper's Fig. 6 circuit — the Miller op amp —
// chaining the library's scenario subsystems through the engine facade:
//
//   1. Section V:   layout-aware electrical sizing, several candidates on
//                   the portfolio seed schedule (layoutaware/placed_sizing.h);
//   2. Sections II/III: every sized candidate becomes an annotated netlist
//                   (Power on the dissipating devices, a shape curve on the
//                   Miller cap) and is placed IN PARALLEL through the
//                   deterministic BatchPlacer with the thermal objective
//                   and shape-selection moves enabled;
//   3. Section II:  thermal verification of the winner — the symmetric
//                   pairs are checked for temperature mismatch against the
//                   scratch ThermalField the cost model is pinned to.
#include <cstdio>
#include <vector>

#include "geom/placement.h"
#include "layoutaware/placed_sizing.h"
#include "shapefn/enumerate.h"
#include "thermal/thermal.h"

using namespace als;

int main() {
  Technology tech = Technology::c035();

  OtaSpecs specs;
  specs.minGainDb = 70.0;
  specs.minGbwHz = 15e6;
  specs.minPmDeg = 55.0;
  specs.minSrVps = 10e6;

  // --- 1 + 2: sizing candidates, placed in parallel with thermal + shapes ---
  PlacedSizingOptions opt;
  opt.sizing.layoutAware = true;
  opt.sizing.seed = 6;
  opt.numCandidates = 3;
  opt.backend = EngineBackend::SeqPair;    // symmetry exact by construction
  opt.placement.maxSweeps = 160;
  opt.placement.numRestarts = 4;
  opt.placement.numThreads = 4;
  opt.placement.thermalWeight = 1.0;       // pair-mismatch term ON
  opt.placement.shapeMoveProb = 0.1;       // Miller-cap shape selection ON
  opt.placement.seed = 6;
  PlacedSizingResult flow = runMillerPlacedSizing(tech, specs, opt);

  for (std::size_t i = 0; i < flow.candidates.size(); ++i) {
    const PlacedSizingCandidate& cand = flow.candidates[i];
    std::printf("candidate %zu (seed %llu): gain %.1f dB, GBW %.1f MHz, "
                "specs %s; placed area %.0f um^2%s\n",
                i, static_cast<unsigned long long>(cand.seed),
                cand.sizing.perfExtracted.gainDb,
                cand.sizing.perfExtracted.gbwHz / 1e6,
                cand.sizing.meetsSpecsExtracted ? "met" : "NOT met",
                static_cast<double>(cand.placement.area) * 1e-6,
                i == flow.bestIndex ? "  <- winner" : "");
  }
  const PlacedSizingCandidate& best = flow.best();
  std::printf("\nflow: %zu candidates sized + placed in %.1fs\n\n",
              flow.candidates.size(), flow.seconds);

  // --- symmetry of the winner (exact by construction for seqpair) ---
  for (const SymmetryGroup& g : best.circuit.symmetryGroups()) {
    std::printf("  %-4s %s\n", g.name.c_str(),
                mirrorAxisOf(best.placement.placement, g) ? "mirrored exactly"
                                                          : "VIOLATED");
  }

  // --- 3. thermal check from the circuit's own Power annotations ---
  std::vector<double> power(best.circuit.moduleCount(), 0.0);
  for (ModuleId m = 0; m < best.circuit.moduleCount(); ++m) {
    power[m] = best.circuit.module(m).powerW;
  }
  ThermalField field(sourcesFromPlacement(best.placement.placement, power));
  std::puts("\nthermal mismatch across matched pairs (annotated radiators):");
  for (const SymmetryGroup& g : best.circuit.symmetryGroups()) {
    auto mm = pairTemperatureMismatch(best.placement.placement, g, field);
    for (std::size_t i = 0; i < mm.size(); ++i) {
      std::printf("  %-4s pair %zu: dT = %.4f K\n", g.name.c_str(), i, mm[i]);
    }
  }
  std::printf("\n%s", asciiArt(best.placement.placement,
                               best.circuit.moduleNames(), 56).c_str());
  return 0;
}
