// Quickstart: place a small analog circuit with symmetry constraints using
// the Section II symmetric-feasible sequence-pair annealer.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "netlist/generators.h"
#include "seqpair/sa_placer.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"

using namespace als;

int main() {
  // 1. Describe the circuit: modules (footprints in DBU = nm), nets, and
  //    symmetry groups.  Here: the paper's Fig. 1 configuration.
  Circuit circuit = makeFig1Example();
  std::printf("circuit '%s': %zu modules, %zu nets, %zu symmetry group(s)\n",
              circuit.name().c_str(), circuit.moduleCount(),
              circuit.nets().size(), circuit.symmetryGroups().size());

  // 2. Anneal within the symmetric-feasible sequence-pair subspace.
  SeqPairPlacerOptions options;
  options.maxSweeps = 300;
  options.seed = 1;
  SeqPairPlacerResult result = placeSeqPairSA(circuit, options);

  // 3. Inspect the result: the placement is legal and *exactly* symmetric.
  std::printf("best code    : %s\n",
              result.code.toString(circuit.moduleNames()).c_str());
  std::printf("area         : %.0f um^2 (module area %.0f um^2, dead space %.1f%%)\n",
              static_cast<double>(result.area) * 1e-6,
              static_cast<double>(circuit.totalModuleArea()) * 1e-6,
              100.0 * (static_cast<double>(result.area) /
                           static_cast<double>(circuit.totalModuleArea()) -
                       1.0));
  std::printf("wirelength   : %.1f um\n", static_cast<double>(result.hpwl) / 1000.0);
  std::printf("legal        : %s\n", result.placement.isLegal() ? "yes" : "no");
  std::printf("symmetric    : %s\n",
              verifySymmetry(result.placement, circuit.symmetryGroups(),
                             result.axis2x)
                  ? "yes (exact, per group axis)"
                  : "no");
  std::printf("\n%s", asciiArt(result.placement, circuit.moduleNames(), 60).c_str());
  return 0;
}
