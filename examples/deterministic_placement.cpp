// Deterministic placement by hierarchically bounded enumeration and
// enhanced shape functions (Section IV), on the Fig. 6 Miller op amp and
// the Table-I folded-cascode circuit.
//
// The run shows the two-step flow: exhaustive enumeration of every basic
// module set (DP, CM1, CM2), then bottom-up combination along the hierarchy
// tree — once with regular additions (RSF) and once with enhanced additions
// (ESF) for a direct area comparison.
#include <cstdio>

#include "netlist/generators.h"
#include "shapefn/deterministic.h"
#include "shapefn/enumerate.h"

using namespace als;

namespace {

void runCircuit(const Circuit& circuit) {
  std::printf("--- %s (%zu modules, %zu basic sets) ---\n", circuit.name().c_str(),
              circuit.moduleCount(), circuit.hierarchy().basicSetCount());

  DeterministicOptions rsfOpt;
  rsfOpt.kind = AdditionKind::Regular;
  DeterministicResult rsf = placeDeterministic(circuit, rsfOpt);

  DeterministicOptions esfOpt;
  esfOpt.kind = AdditionKind::Enhanced;
  DeterministicResult esf = placeDeterministic(circuit, esfOpt);

  std::printf("basic-set placements enumerated : %llu\n",
              static_cast<unsigned long long>(esf.enumeratedPlacements));
  std::printf("RSF: area %.0f um^2, usage %.2f%%, %zu root shapes, %.3fs\n",
              static_cast<double>(rsf.area) * 1e-6, rsf.areaUsage * 100.0,
              rsf.rootFunction.size(), rsf.seconds);
  std::printf("ESF: area %.0f um^2, usage %.2f%%, %zu root shapes, %.3fs\n",
              static_cast<double>(esf.area) * 1e-6, esf.areaUsage * 100.0,
              esf.rootFunction.size(), esf.seconds);
  std::printf("ESF advantage: %.2f percentage points of area usage\n",
              (rsf.areaUsage - esf.areaUsage) * 100.0);

  // Constraints survive the deterministic flow.
  for (const SymmetryGroup& g : circuit.symmetryGroups()) {
    bool ok = mirrorAxisOf(esf.placement, g).has_value();
    std::printf("symmetry group %-8s: %s\n", g.name.c_str(),
                ok ? "mirrored exactly" : "VIOLATED");
  }
  std::printf("\n%s\n", asciiArt(esf.placement, circuit.moduleNames(), 56).c_str());
}

}  // namespace

int main() {
  std::printf("8 modules already admit %llu B*-tree placements -- hence\n"
              "enumeration bounded by the hierarchy (Section IV).\n\n",
              static_cast<unsigned long long>(bstarPlacementCount(8)));
  runCircuit(makeMillerOpAmp());
  runCircuit(makeTableICircuit(TableICircuit::FoldedCascode));
  return 0;
}
