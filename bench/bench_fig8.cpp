// Experiment E9 — Fig. 8: the enhanced and regular shape functions of the
// largest circuit ("lnamixbias", 110 modules), plotted into one diagram.
//
// The bench prints both pareto staircases as CSV series (w_um, h_um per
// point) — the ESF curve dominates (lies inside) the RSF curve.
//
// Flags: --json <path>, --smoke (uses the mid-size biasynth circuit in CI).
#include <cstdio>

#include "netlist/generators.h"
#include "shapefn/deterministic.h"
#include "util/bench_json.h"

using namespace als;

namespace {

void printSeries(const char* label, const ShapeFunction& sf) {
  std::printf("# series: %s (%zu pareto points)\n", label, sf.size());
  std::printf("series,w_um,h_um,area_um2\n");
  for (const ShapeEntry& e : sf.entries()) {
    std::printf("%s,%.1f,%.1f,%.0f\n", label, static_cast<double>(e.w) / 1000.0,
                static_cast<double>(e.h) / 1000.0,
                static_cast<double>(e.area()) * 1e-6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E9 / Fig. 8: ESF and RSF of lnamixbias (110 modules) ===\n");
  Circuit c = makeTableICircuit(io.smoke() ? TableICircuit::Biasynth
                                           : TableICircuit::Lnamixbias);

  DeterministicOptions esfOpt;
  esfOpt.kind = AdditionKind::Enhanced;
  DeterministicResult esf = placeDeterministic(c, esfOpt);

  DeterministicOptions rsfOpt;
  rsfOpt.kind = AdditionKind::Regular;
  DeterministicResult rsf = placeDeterministic(c, rsfOpt);

  printSeries("ESF", esf.rootFunction);
  std::puts("");
  printSeries("RSF", rsf.rootFunction);

  // Domination over the shared width range: at each RSF breakpoint inside
  // the ESF curve's width span, the ESF staircase must be no taller.  (The
  // two curves span different width ranges — enhanced additions shrink the
  // wide flat variants — so the comparison is clamped to the overlap,
  // matching how Fig. 8 overlays the two staircases.)
  std::size_t compared = 0, dominatedCount = 0;
  const auto& esfEntries = esf.rootFunction.entries();
  for (const ShapeEntry& r : rsf.rootFunction.entries()) {
    if (r.w < esfEntries.front().w) continue;  // left of the ESF span
    Coord hEsf = esfEntries.front().h;
    for (const ShapeEntry& e : esfEntries) {
      if (e.w <= r.w) hEsf = e.h;  // entries sorted by w; h decreasing
    }
    ++compared;
    if (hEsf <= r.h) ++dominatedCount;
  }
  io.add({"esf", c.name(), 0, 0, 1, esf.areaUsage, 0.0,
          static_cast<double>(esf.area), esf.seconds});
  io.add({"rsf", c.name(), 0, 0, 1, rsf.areaUsage, 0.0,
          static_cast<double>(rsf.area), rsf.seconds});
  std::printf("\nESF at-or-below RSF on the shared width range: %zu / %zu points\n",
              dominatedCount, compared);
  std::printf("best area: ESF %.0f um^2 (usage %.2f%%)  vs  RSF %.0f um^2 (usage %.2f%%)\n",
              static_cast<double>(esf.area) * 1e-6, esf.areaUsage * 100.0,
              static_cast<double>(rsf.area) * 1e-6, rsf.areaUsage * 100.0);
  return 0;
}
