// Experiments E5 + E6 — hierarchical HB*-tree placement (Section III).
//
// E5: the Fig. 2 design — a top design with a hierarchical-symmetry
// sub-circuit (device pair + two mirrored common-centroid arrays) and a
// proximity sub-circuit — is placed by the HB*-tree annealer; all
// constraints hold by construction and are re-verified geometrically.
//
// E6: HB*-tree SA vs flat B*-tree SA (constraints as penalties) on the
// Fig. 2 design and synthetic hierarchical circuits under equal wall-clock
// budgets: the hierarchical placer is violation-free by construction while
// the flat baseline reports its residual deviations.
//
// The E6 HB*-tree rows run through the runtime portfolio (one seed-split
// restart per hardware core through the PlacementEngine facade); the flat
// baseline keeps its direct call because its residual-violation fields are
// backend-specific.  Flags: --json <path>, --smoke (fixed sweep budgets).
#include <cstdio>
#include <iostream>

#include "bstar/flat_placer.h"
#include "bstar/hbstar.h"
#include "netlist/generators.h"
#include "runtime/portfolio.h"
#include "seqpair/sym_placer.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  const std::size_t hardware =
      ThreadPool::resolveThreadCount(0);
  std::puts("=== E5: HB*-tree placement of the Fig. 2 design ===\n");
  {
    Circuit c = makeFig2Design();
    HBPlacerOptions opt;
    io.applyBudget(opt, 3.0);
    opt.seed = 31;
    HBPlacerResult r = placeHBStarSA(c, opt);
    io.add({"hbstar", "fig2", r.sweeps, 1, 1, r.cost,
            static_cast<double>(r.hpwl), static_cast<double>(r.area),
            r.seconds});
    std::printf("modules=%zu  area=%.0f um^2  (module area %.0f um^2)  HPWL=%.1f um\n",
                c.moduleCount(),
                static_cast<double>(r.area) * 1e-6,
                static_cast<double>(c.totalModuleArea()) * 1e-6,
                static_cast<double>(r.hpwl) / 1000.0);
    bool sym = verifySymmetry(r.placement, c.symmetryGroups(), r.axis2x);
    bool prox = true;
    const HierTree& h = c.hierarchy();
    for (HierNodeId id = 0; id < h.nodeCount(); ++id) {
      if (h.node(id).constraint == GroupConstraint::Proximity) {
        std::vector<Rect> rects;
        for (ModuleId m : h.leavesUnder(id)) rects.push_back(r.placement[m]);
        prox = prox && isConnectedRegion(rects);
      }
    }
    std::printf("legal=%s  hierarchical symmetry exact=%s  proximity connected=%s\n",
                r.placement.isLegal() ? "yes" : "NO", sym ? "yes" : "NO",
                prox ? "yes" : "NO");
    std::printf("\n%s\n", asciiArt(r.placement, c.moduleNames(), 64).c_str());
  }

  std::puts("=== E6: hierarchical HB*-tree SA vs flat B*-tree SA ===\n");
  struct Bench {
    std::string name;
    Circuit circuit;
  };
  std::vector<Bench> benches;
  benches.push_back({"fig2 design (19)", makeFig2Design()});
  benches.push_back({"synthetic-24", makeSynthetic({.name = "h24",
                                                    .moduleCount = 24,
                                                    .seed = 61,
                                                    .symmetricFraction = 0.6})});
  benches.push_back({"synthetic-48", makeSynthetic({.name = "h48",
                                                    .moduleCount = 48,
                                                    .seed = 62,
                                                    .symmetricFraction = 0.5})});
  const double budget = 3.0;

  Table table({"circuit", "placer", "area/modarea", "HPWL (um)", "sym dev (um)",
               "prox violations", "time (s)"});
  PortfolioRunner runner;
  for (const Bench& b : benches) {
    const Circuit& c = b.circuit;
    double modArea = static_cast<double>(c.totalModuleArea());

    EngineOptions hOpt;
    io.applyBudget(hOpt, budget);
    hOpt.seed = 9;
    hOpt.numRestarts = io.smoke() ? 2 : hardware;  // one restart per core
    hOpt.numThreads = 0;
    // Equal per-attempt budgets vs the flat row: the wall-clock cap is
    // per slice already, but EngineOptions.maxSweeps is the portfolio
    // TOTAL, so the smoke sweep budget must scale with the restart count.
    if (io.smoke()) hOpt.maxSweeps *= hOpt.numRestarts;
    EngineResult hb = runner.run(c, EngineBackend::HBStar, hOpt);
    io.add("hbstar", b.name, hb, hardware);
    table.addRow({b.name, "HB*-tree SA portfolio",
                  Table::fmt(static_cast<double>(hb.area) / modArea),
                  Table::fmt(static_cast<double>(hb.hpwl) / 1000.0, 1), "0.00", "0",
                  Table::fmt(hb.seconds, 2)});

    FlatBStarOptions fOpt;
    io.applyBudget(fOpt, budget);
    fOpt.seed = 9;
    FlatBStarResult flat = placeFlatBStarSA(c, fOpt);
    io.add({"flat-bstar", b.name, flat.sweeps, 1, 1, flat.cost,
            static_cast<double>(flat.hpwl), static_cast<double>(flat.area),
            flat.seconds});
    table.addRow({b.name, "flat B*-tree SA",
                  Table::fmt(static_cast<double>(flat.area) / modArea),
                  Table::fmt(static_cast<double>(flat.hpwl) / 1000.0, 1),
                  Table::fmt(static_cast<double>(flat.symDeviation) / 1000.0, 2),
                  std::to_string(flat.proximityViolations),
                  Table::fmt(flat.seconds, 2)});
  }
  table.print(std::cout);
  std::puts(
      "\nReading: the hierarchical placer satisfies every symmetry /\n"
      "common-centroid / proximity constraint by construction; the flat\n"
      "baseline must buy constraint compliance with penalty weight and\n"
      "typically keeps residual deviations in the same budget.  (The HB*\n"
      "rows run a restart portfolio — one seed-split restart per hardware\n"
      "thread at the same per-restart wall budget.)");
  return 0;
}
