// Decode-throughput bench: the per-move packing kernels behind every SA
// backend, measured on the embedded corpus (apte .. ami49).
//
// Two experiments:
//
//   1. B*-tree decode kernels — the same perturb-then-pack sequence driven
//      through (a) the historical std::map contour with per-decode buffers
//      (re-created here as the baseline; the library's map `Contour` is
//      retained exactly for this comparison and the oracle tests) and
//      (b) the production `FlatContour` + `BStarPackScratch` kernel
//      (`packBStarInto`).  Both produce bit-identical placements (checked);
//      the ratio is the contour speedup the PR 5 tentpole claims (>= 3x on
//      ami49-scale circuits).
//
//   2. End-to-end moves/sec per backend — a fixed-sweep engine run per
//      corpus circuit; movesTried / seconds is the steady-state SA
//      throughput including move, decode, and incremental cost evaluation.
//
// JSON records (--json): `backend` is "decode-map" / "decode-flat" for the
// kernel rows and the engine name for the end-to-end rows; `sweeps` carries
// the decode/move count, `seconds` the elapsed time, and `cost` the
// resulting throughput in operations per second.
//
// A third experiment behind --scaling: the subquadratic move loop across
// the size axis (apte .. n300).  Per circuit it runs each tree backend's SA
// with the full re-decode path and with the partial/incremental path from
// the same seed — the trajectories must be bit-identical (checked via the
// final cost), so the moves/sec ratio isolates the decode asymptotics —
// and cross-checks the three LCS structures (Naive / Fenwick / Veb) against
// each other the same way.  JSON rows: `backend` is flat-full /
// flat-partial / seqpair-full / seqpair-incremental / lcs-naive /
// lcs-fenwick / lcs-veb; `sweeps` carries moves tried, `cost` moves/sec.
//
// Flags: --json <path>, --smoke (small fixed counts for CI), --scaling.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bstar/bstar_tree.h"
#include "bstar/contour.h"
#include "bstar/flat_placer.h"
#include "bstar/pack.h"
#include "engine/placement_engine.h"
#include "io/corpus.h"
#include "seqpair/sa_placer.h"
#include "util/bench_json.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace als;

namespace {

/// The pre-PR-5 decode: fresh std::map contour and fresh coordinate buffers
/// on every pack — the allocation profile the flat kernel eliminates.
Placement packBStarMapContour(const BStarTree& tree,
                              std::span<const Coord> widths,
                              std::span<const Coord> heights) {
  Placement out(tree.size());
  if (tree.size() == 0) return out;
  Contour contour;
  std::vector<Coord> x(tree.size(), 0);
  std::vector<std::size_t> stack{tree.root()};
  while (!stack.empty()) {
    std::size_t node = stack.back();
    stack.pop_back();
    std::size_t item = tree.item(node);
    Coord w = widths[item];
    Coord h = heights[item];
    Coord xNode = x[node];
    Coord yNode = contour.maxOver(xNode, xNode + w);
    contour.raise(xNode, xNode + w, yNode + h);
    out[item] = {xNode, yNode, w, h};
    if (tree.right(node) != BStarTree::npos) {
      x[tree.right(node)] = xNode;
      stack.push_back(tree.right(node));
    }
    if (tree.left(node) != BStarTree::npos) {
      x[tree.left(node)] = xNode + w;
      stack.push_back(tree.left(node));
    }
  }
  return out;
}

Coord checksum(const Placement& p) {
  Coord sum = 0;
  for (const Rect& r : p.rects()) sum += r.x * 3 + r.y * 7 + r.w + r.h;
  return sum;
}

struct KernelResult {
  double decodesPerSec = 0.0;
  double seconds = 0.0;
  Coord check = 0;
};

template <class PackFn>
KernelResult runKernel(const Circuit& c, std::size_t decodes, PackFn pack) {
  const std::size_t n = c.moduleCount();
  std::vector<Coord> w(n), h(n);
  for (std::size_t m = 0; m < n; ++m) {
    w[m] = c.module(m).w;
    h[m] = c.module(m).h;
  }
  BStarTree tree(n);
  Rng rng(1);  // same seed for both kernels -> identical tree sequences
  KernelResult result;
  Stopwatch clock;
  for (std::size_t i = 0; i < decodes; ++i) {
    tree.perturb(rng);
    result.check += pack(tree, w, h);
  }
  result.seconds = clock.seconds();
  result.decodesPerSec =
      result.seconds > 0.0 ? static_cast<double>(decodes) / result.seconds : 0.0;
  return result;
}

double movesPerSec(std::size_t moves, double seconds) {
  return seconds > 0.0 ? static_cast<double>(moves) / seconds : 0.0;
}

void addRate(BenchIo& io, const char* backend, const char* circuit,
             std::size_t moves, double seconds) {
  BenchRecord r;
  r.backend = backend;
  r.circuit = circuit;
  r.sweeps = moves;
  r.seconds = seconds;
  r.cost = movesPerSec(moves, seconds);
  io.add(r);
}

/// --scaling: full vs partial/incremental decode per tree backend and LCS
/// strategy cross-check, across the corpus size axis.  Returns the number
/// of trajectory divergences (any nonzero is a correctness failure).
int runScaling(BenchIo& io) {
  const std::size_t sweeps = io.smoke() ? 6 : 24;
  const CorpusCircuit circuits[] = {CorpusCircuit::Apte, CorpusCircuit::Ami33,
                                    CorpusCircuit::Ami49, CorpusCircuit::N100,
                                    CorpusCircuit::N200, CorpusCircuit::N300};
  int failures = 0;
  Table t({"circuit", "blocks", "flat full", "flat partial", "speedup",
           "sp full", "sp incr", "speedup"});
  double n300Flat = 0.0, n300Sp = 0.0;
  for (CorpusCircuit which : circuits) {
    const char* name = corpusName(which);
    Circuit c = loadCorpusCircuit(which);

    FlatBStarOptions fo;
    fo.maxSweeps = sweeps;
    fo.seed = 1;
    fo.partialDecode = false;
    FlatBStarResult flatFull = placeFlatBStarSA(c, fo);
    fo.partialDecode = true;
    FlatBStarResult flatPart = placeFlatBStarSA(c, fo);
    if (flatFull.cost != flatPart.cost ||
        flatFull.movesTried != flatPart.movesTried) {
      std::fprintf(stderr,
                   "bench_decode: %s: flat partial decode DIVERGED from the "
                   "full re-decode trajectory\n",
                   name);
      ++failures;
    }

    SeqPairPlacerOptions so;
    so.maxSweeps = sweeps;
    so.seed = 1;
    so.incrementalDecode = false;
    SeqPairPlacerResult spFull = placeSeqPairSA(c, so);
    so.incrementalDecode = true;
    SeqPairPlacerResult spInc = placeSeqPairSA(c, so);
    if (spFull.cost != spInc.cost || spFull.movesTried != spInc.movesTried) {
      std::fprintf(stderr,
                   "bench_decode: %s: seqpair incremental decode DIVERGED "
                   "from the full re-decode trajectory\n",
                   name);
      ++failures;
    }

    // LCS structure cross-check: every strategy must ride the exact same
    // trajectory (identical cost), whatever Auto resolved to above.
    struct {
      PackStrategy strategy;
      const char* backend;
    } const lcs[] = {{PackStrategy::Naive, "lcs-naive"},
                     {PackStrategy::Fenwick, "lcs-fenwick"},
                     {PackStrategy::Veb, "lcs-veb"}};
    for (const auto& l : lcs) {
      so.packing = l.strategy;
      SeqPairPlacerResult r = placeSeqPairSA(c, so);
      if (r.cost != spInc.cost) {
        std::fprintf(stderr,
                     "bench_decode: %s: %s DIVERGED from the Auto "
                     "trajectory\n",
                     name, l.backend);
        ++failures;
      }
      addRate(io, l.backend, name, r.movesTried, r.seconds);
    }
    so.packing = PackStrategy::Auto;

    double flatSpeed = flatFull.seconds > 0.0 && flatPart.seconds > 0.0
                           ? movesPerSec(flatPart.movesTried, flatPart.seconds) /
                                 movesPerSec(flatFull.movesTried, flatFull.seconds)
                           : 0.0;
    double spSpeed = spFull.seconds > 0.0 && spInc.seconds > 0.0
                         ? movesPerSec(spInc.movesTried, spInc.seconds) /
                               movesPerSec(spFull.movesTried, spFull.seconds)
                         : 0.0;
    if (which == CorpusCircuit::N300) {
      n300Flat = flatSpeed;
      n300Sp = spSpeed;
    }
    t.addRow({name, std::to_string(c.moduleCount()),
              Table::fmt(movesPerSec(flatFull.movesTried, flatFull.seconds) / 1e3, 1) + "k",
              Table::fmt(movesPerSec(flatPart.movesTried, flatPart.seconds) / 1e3, 1) + "k",
              Table::fmt(flatSpeed, 2) + "x",
              Table::fmt(movesPerSec(spFull.movesTried, spFull.seconds) / 1e3, 1) + "k",
              Table::fmt(movesPerSec(spInc.movesTried, spInc.seconds) / 1e3, 1) + "k",
              Table::fmt(spSpeed, 2) + "x"});
    addRate(io, "flat-full", name, flatFull.movesTried, flatFull.seconds);
    addRate(io, "flat-partial", name, flatPart.movesTried, flatPart.seconds);
    addRate(io, "seqpair-full", name, spFull.movesTried, spFull.seconds);
    addRate(io, "seqpair-incremental", name, spInc.movesTried, spInc.seconds);
  }
  t.print(std::cout);
  std::printf("\nmoves/sec, %zu sweeps per run, single thread; full = whole-"
              "placement re-decode per move, partial/incremental = suffix-"
              "only.  n300 speedup: flat-bstar %.2fx, seqpair %.2fx\n",
              sweeps, n300Flat, n300Sp);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scaling") == 0) {
      std::puts("=== move-loop scaling: full vs partial/incremental decode, "
                "apte .. n300 ===\n");
      return runScaling(io) == 0 ? 0 : 1;
    }
  }
  std::puts("=== decode throughput: map contour vs flat contour, and "
            "end-to-end moves/sec per backend ===\n");

  const std::size_t decodes = io.smoke() ? 4000 : 50000;
  Table kernels({"circuit", "blocks", "map decodes/s", "flat decodes/s",
                 "speedup"});
  int failures = 0;
  double ami49Speedup = 0.0;
  for (CorpusCircuit which : allCorpusCircuits()) {
    Circuit c = loadCorpusCircuit(which);
    KernelResult mapKernel = runKernel(
        c, decodes, [](const BStarTree& t, const auto& w, const auto& h) {
          return checksum(packBStarMapContour(t, w, h));
        });
    BStarPackScratch scratch;
    Placement decoded;
    KernelResult flatKernel = runKernel(
        c, decodes, [&](const BStarTree& t, const auto& w, const auto& h) {
          packBStarInto(t, w, h, scratch, decoded);
          return checksum(decoded);
        });
    if (mapKernel.check != flatKernel.check) {
      std::fprintf(stderr,
                   "bench_decode: %s: flat and map kernels DIVERGED\n",
                   corpusName(which));
      ++failures;
    }
    double speedup = mapKernel.decodesPerSec > 0.0
                         ? flatKernel.decodesPerSec / mapKernel.decodesPerSec
                         : 0.0;
    if (which == CorpusCircuit::Ami49) ami49Speedup = speedup;
    kernels.addRow({corpusName(which), std::to_string(c.moduleCount()),
                    Table::fmt(mapKernel.decodesPerSec / 1e3, 1) + "k",
                    Table::fmt(flatKernel.decodesPerSec / 1e3, 1) + "k",
                    Table::fmt(speedup, 2) + "x"});
    BenchRecord mapRecord;
    mapRecord.backend = "decode-map";
    mapRecord.circuit = corpusName(which);
    mapRecord.sweeps = decodes;
    mapRecord.seconds = mapKernel.seconds;
    mapRecord.cost = mapKernel.decodesPerSec;
    io.add(mapRecord);
    BenchRecord flatRecord;
    flatRecord.backend = "decode-flat";
    flatRecord.circuit = corpusName(which);
    flatRecord.sweeps = decodes;
    flatRecord.seconds = flatKernel.seconds;
    flatRecord.cost = flatKernel.decodesPerSec;
    io.add(flatRecord);
  }
  kernels.print(std::cout);
  std::printf("\nflat B*-tree decode kernel: %s sequences of %zu decodes; "
              "ami49 speedup %.2fx\n\n",
              io.smoke() ? "smoke" : "full", decodes, ami49Speedup);

  const std::size_t sweeps = io.smoke() ? 24 : 128;
  Table moves({"circuit", "backend", "moves", "seconds", "moves/sec"});
  for (CorpusCircuit which : allCorpusCircuits()) {
    Circuit c = loadCorpusCircuit(which);
    for (EngineBackend backend : allBackends()) {
      const std::unique_ptr<PlacementEngine> engine = makeEngine(backend);
      EngineOptions opt;
      opt.maxSweeps = sweeps;
      opt.seed = 1;
      EngineResult r = engine->place(c, opt);
      double movesPerSec =
          r.seconds > 0.0 ? static_cast<double>(r.movesTried) / r.seconds : 0.0;
      moves.addRow({corpusName(which), std::string(backendName(backend)),
                    std::to_string(r.movesTried), Table::fmt(r.seconds, 3),
                    Table::fmt(movesPerSec / 1e3, 1) + "k"});
      BenchRecord record;
      record.backend = std::string(backendName(backend));
      record.circuit = corpusName(which);
      record.sweeps = r.movesTried;
      record.seconds = r.seconds;
      record.cost = movesPerSec;
      io.add(record);
    }
  }
  moves.print(std::cout);
  std::printf("\nend-to-end SA throughput at %zu sweeps per run "
              "(move + decode + incremental cost, single thread)\n",
              sweeps);
  return failures == 0 ? 0 : 1;
}
