// Experiments E1 + E2 — Section II's worked example and the Lemma.
//
// Reproduces, exactly:
//   * Fig. 1: the sequence-pair (EBAFCDG, EBCDFAG) is symmetric-feasible for
//     the group { (C,D), (B,G), A, F } and packs into a legal placement that
//     mirrors the group about one vertical axis;
//   * the in-text numbers: 35,280 symmetric-feasible sequence-pairs out of
//     (7!)^2 = 25,401,600 — a 99.86% search-space reduction — cross-checked
//     by exhaustive enumeration of all 25.4M codes;
//   * a sweep of the Lemma over further group configurations.
//
// Flags: --json <path>, --smoke (skips the 25.4M-code exhaustive
// cross-check; the Lemma sweep's small cases still enumerate).
#include <cstdio>
#include <iostream>

#include "netlist/generators.h"
#include "seqpair/enumerate.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"
#include "util/bench_json.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E1/E2: Fig. 1 example and the S-F counting Lemma ===\n");

  Circuit c = makeFig1Example();
  auto groups = std::span<const SymmetryGroup>(c.symmetryGroups());
  auto names = c.moduleNames();

  // Module order: E=0 B=1 A=2 F=3 C=4 D=5 G=6 -> (EBAFCDG, EBCDFAG).
  SequencePair sp({0, 1, 2, 3, 4, 5, 6}, {0, 1, 4, 5, 3, 2, 6});
  std::printf("sequence-pair        : %s\n", sp.toString(names).c_str());
  std::printf("symmetry group       : {(C,D), (B,G), A, F}\n");
  std::printf("symmetric-feasible   : %s\n",
              isSymmetricFeasible(sp, groups) ? "yes" : "no");

  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  auto built = buildSymmetricPlacement(sp, w, h, groups);
  if (built) {
    std::printf("packed placement     : legal=%s, exactly symmetric=%s\n",
                built->placement.isLegal() ? "yes" : "no",
                verifySymmetry(built->placement, groups, built->axis2x) ? "yes" : "no");
    std::printf("\n%s\n", asciiArt(built->placement, names, 60).c_str());
    io.add({"sf-pack", "fig1", 0, 0, 1,
            searchSpaceReduction(7, groups), 0.0,
            static_cast<double>(built->placement.boundingBox().area()), 0.0});
  }

  // --- the Lemma's numbers, formula vs exhaustive enumeration ---
  BigUint total = totalSequencePairCount(7);
  BigUint formula = sfSequencePairCount(7, groups);
  std::printf("total sequence-pairs (7!)^2        : %s (paper: 25,401,600)\n",
              total.toString().c_str());
  std::printf("S-F bound (7!)^2/6!  (Lemma)       : %s (paper: 35,280)\n",
              formula.toString().c_str());
  std::printf("search-space reduction             : %.2f%% (paper: 99.86%%)\n",
              searchSpaceReduction(7, groups) * 100.0);

  if (io.smoke()) {
    std::puts("exhaustive enumeration (all 25.4M) : skipped (--smoke)\n");
  } else {
    Stopwatch clock;
    std::uint64_t perGroup = countSymmetricFeasible(7, groups, SfReading::PerGroup);
    std::printf("exhaustive enumeration (all 25.4M) : %llu codes satisfy (1)  [%.1fs]\n",
                static_cast<unsigned long long>(perGroup), clock.seconds());
    std::printf("formula exact?                     : %s\n\n",
                formula.fitsU64() && perGroup == formula.toU64() ? "yes" : "NO");
    io.add({"sf-enumeration", "fig1", 0, 0, 1,
            static_cast<double>(perGroup), 0.0, 0.0, clock.seconds()});
  }

  // --- Lemma sweep over group configurations ---
  std::puts("Lemma sweep (per-group formula vs enumeration; union reading bounded):");
  Table table({"n", "groups (p pairs + s selfs)", "total (n!)^2", "S-F (Lemma)",
               "enumerated per-group", "enumerated union", "reduction"});
  struct Case {
    std::size_t n;
    std::string label;
    std::vector<SymmetryGroup> groups;
  };
  std::vector<Case> cases{
      {4, "1 pair", {{"g", {{0, 1}}, {}}}},
      {4, "2 pairs, one group", {{"g", {{0, 1}, {2, 3}}, {}}}},
      {5, "pair + self", {{"g", {{0, 1}}, {2}}}},
      {5, "2 groups of a pair", {{"g1", {{0, 1}}, {}}, {"g2", {{2, 3}}, {}}}},
      {6, "2 pairs + 2 selfs", {{"g", {{0, 1}, {2, 3}}, {4, 5}}}},
      {6, "3 groups of a pair",
       {{"g1", {{0, 1}}, {}}, {"g2", {{2, 3}}, {}}, {"g3", {{4, 5}}, {}}}},
  };
  for (const Case& tc : cases) {
    std::uint64_t per = countSymmetricFeasible(tc.n, tc.groups, SfReading::PerGroup);
    std::uint64_t uni = countSymmetricFeasible(tc.n, tc.groups, SfReading::Union);
    table.addRow({std::to_string(tc.n), tc.label,
                  totalSequencePairCount(tc.n).toString(),
                  sfSequencePairCount(tc.n, tc.groups).toString(),
                  std::to_string(per), std::to_string(uni),
                  Table::fmtPercent(searchSpaceReduction(tc.n, tc.groups))});
  }
  table.print(std::cout);
  std::puts(
      "\nNote: with several groups the Lemma is an upper bound — the union\n"
      "reading of property (1), which is the buildable subset, is smaller;\n"
      "with a single group both coincide (see seqpair/symmetry.h).");
  return 0;
}
