// Experiment E4 — kernel micro-benchmarks (google-benchmark).
//
// Section II cites an O(G * n log log n) per-evaluation bound obtained with
// a van Emde Boas-style priority queue [26].  These benchmarks measure the
// library's three sequence-pair packing structures (naive O(n^2), Fenwick
// O(n log n), vEB O(n log log n)) across module counts, plus the B*-tree
// contour packer, the symmetric placement builder, and raw vEB operations.
#include <benchmark/benchmark.h>

#include "bstar/pack.h"
#include "cost/cost_model.h"
#include "netlist/generators.h"
#include "seqpair/packer.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"
#include "util/veb.h"

namespace als {
namespace {

Circuit circuitOf(std::size_t n) {
  return makeSynthetic({.name = "bench", .moduleCount = n, .seed = 99});
}

void packBenchmark(benchmark::State& state, PackStrategy strategy) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Circuit c = circuitOf(n);
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  Rng rng(1);
  SequencePair sp = SequencePair::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packSequencePair(sp, w, h, strategy));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_SeqPairPackNaive(benchmark::State& state) {
  packBenchmark(state, PackStrategy::Naive);
}
void BM_SeqPairPackFenwick(benchmark::State& state) {
  packBenchmark(state, PackStrategy::Fenwick);
}
void BM_SeqPairPackVeb(benchmark::State& state) {
  packBenchmark(state, PackStrategy::Veb);
}
BENCHMARK(BM_SeqPairPackNaive)->RangeMultiplier(2)->Range(16, 512)->Complexity();
BENCHMARK(BM_SeqPairPackFenwick)->RangeMultiplier(2)->Range(16, 512)->Complexity();
BENCHMARK(BM_SeqPairPackVeb)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_SymmetricPlacementBuild(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Circuit c = makeSynthetic(
      {.name = "sym", .moduleCount = n, .seed = 7, .symmetricFraction = 0.6});
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  Rng rng(2);
  SequencePair sp = SequencePair::random(n, rng);
  makeSymmetricFeasible(sp, c.symmetryGroups());
  for (auto _ : state) {
    benchmark::DoNotOptimize(buildSymmetricPlacement(sp, w, h, c.symmetryGroups()));
  }
}
BENCHMARK(BM_SymmetricPlacementBuild)->RangeMultiplier(2)->Range(16, 128);

void BM_BStarContourPack(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Circuit c = circuitOf(n);
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  Rng rng(3);
  BStarTree t = BStarTree::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(packBStar(t, w, h));
  }
}
BENCHMARK(BM_BStarContourPack)->RangeMultiplier(2)->Range(16, 512);

// --- incremental decode kernels: the per-move cost under the SA move mix --
//
// These drive the same kernels the placers' hot loops use: each iteration
// applies one SA-style perturbation and re-decodes through the journaled
// partial/incremental path on a warm scratch.  Compare against the full-pack
// benchmarks above at the same n — the gap is what suffix-only re-decode
// buys per move (bench_decode --scaling reports the same contrast end to
// end, with cost evaluation and accept/reject included).

void BM_BStarPartialRepack(benchmark::State& state) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Circuit c = circuitOf(n);
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  Rng rng(3);
  BStarTree t = BStarTree::random(n, rng);
  BStarPackScratch scratch;
  Placement out;
  packBStarPartialInto(t, w, h, scratch, out);  // cold pack seeds the record
  for (auto _ : state) {
    t.perturb(rng);
    benchmark::DoNotOptimize(packBStarPartialInto(t, w, h, scratch, out));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_BStarPartialRepack)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void incrementalPackBenchmark(benchmark::State& state, PackStrategy strategy) {
  std::size_t n = static_cast<std::size_t>(state.range(0));
  Circuit c = circuitOf(n);
  std::vector<Coord> w, h;
  for (const Module& m : c.modules()) {
    w.push_back(m.w);
    h.push_back(m.h);
  }
  Rng rng(1);
  SequencePair sp = SequencePair::random(n, rng);
  SeqPairPackScratch scratch;
  Placement out;
  std::vector<std::size_t> moved;
  packSequencePairIncrementalInto(sp, w, h, strategy, scratch, out, moved);
  for (auto _ : state) {
    // The placer's structural move: swap two positions in one sequence.
    std::size_t i = rng.index(n), j = rng.index(n);
    if (rng.index(2) == 0) {
      sp.swapAlphaAt(i, j);
    } else {
      sp.swapBetaAt(i, j);
    }
    moved.clear();
    packSequencePairIncrementalInto(sp, w, h, strategy, scratch, out, moved);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}

void BM_SeqPairPackIncrementalNaive(benchmark::State& state) {
  incrementalPackBenchmark(state, PackStrategy::Naive);
}
void BM_SeqPairPackIncrementalFenwick(benchmark::State& state) {
  incrementalPackBenchmark(state, PackStrategy::Fenwick);
}
void BM_SeqPairPackIncrementalVeb(benchmark::State& state) {
  incrementalPackBenchmark(state, PackStrategy::Veb);
}
BENCHMARK(BM_SeqPairPackIncrementalNaive)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();
BENCHMARK(BM_SeqPairPackIncrementalFenwick)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();
BENCHMARK(BM_SeqPairPackIncrementalVeb)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

// --- cost-kernel benchmarks: scratch vs incremental evaluation -------------
//
// Same circuit, same objective (the flat penalty placer's full mix: area +
// wirelength + symmetry + proximity), same single-module move pattern; the
// scratch kernel re-reduces every net/group per evaluation, the incremental
// kernel re-reduces only what the move dirtied through the module→net
// index.  The per-evaluation gap is the headline speedup of the cost layer
// (tests/cost_test.cpp pins the two kernels to bit-equal costs).

struct CostBenchFixture {
  Circuit circuit;
  CostModel model;
  Placement placement;

  explicit CostBenchFixture(std::size_t n)
      : circuit(makeSynthetic({.name = "cost",
                               .moduleCount = n,
                               .seed = 23,
                               .symmetricFraction = 0.5})),
        model(circuit, makeObjective(circuit, {.wirelength = 0.25,
                                               .symmetry = 2.0,
                                               .proximity = 2.0})) {
    std::vector<Coord> w, h;
    for (const Module& m : circuit.modules()) {
      w.push_back(m.w);
      h.push_back(m.h);
    }
    Rng rng(7);
    placement = packBStar(BStarTree::random(n, rng), w, h);
  }

  /// Displaces one random module by up to a micrometre (the canonical
  /// local move of a coordinate-based placer); returns its index.
  std::size_t mutate(Rng& rng) {
    std::size_t m = rng.index(placement.size());
    Coord dx = (static_cast<Coord>(rng.index(3)) - 1) * kUm;
    Coord dy = (static_cast<Coord>(rng.index(3)) - 1) * kUm;
    placement[m] = placement[m].translated(dx, dy);
    return m;
  }
};

void BM_CostScratch(benchmark::State& state) {
  CostBenchFixture fx(static_cast<std::size_t>(state.range(0)));
  Rng rng(29);
  for (auto _ : state) {
    fx.mutate(rng);
    benchmark::DoNotOptimize(fx.model.evaluate(fx.placement));
  }
  state.SetComplexityN(state.range(0));
}

void BM_CostIncremental(benchmark::State& state) {
  CostBenchFixture fx(static_cast<std::size_t>(state.range(0)));
  fx.model.reset(fx.placement);
  Rng rng(29);
  for (auto _ : state) {
    std::size_t moved[1] = {fx.mutate(rng)};
    benchmark::DoNotOptimize(fx.model.propose(fx.placement, moved));
    fx.model.commit();
  }
  state.SetComplexityN(state.range(0));
}

BENCHMARK(BM_CostScratch)->Arg(50)->Arg(200)->Arg(1000)->Complexity();
BENCHMARK(BM_CostIncremental)->Arg(50)->Arg(200)->Arg(1000)->Complexity();

void BM_VebInsertEraseSuccessor(benchmark::State& state) {
  std::size_t universe = static_cast<std::size_t>(state.range(0));
  VebTree tree(universe);
  Rng rng(4);
  std::vector<std::uint64_t> keys;
  for (std::size_t i = 0; i < 1024; ++i) {
    keys.push_back(static_cast<std::uint64_t>(rng.index(universe)));
  }
  for (auto _ : state) {
    for (std::uint64_t k : keys) tree.insert(k);
    std::uint64_t sum = 0;
    for (std::uint64_t k : keys) {
      auto s = tree.successor(k);
      if (s) sum += *s;
    }
    benchmark::DoNotOptimize(sum);
    for (std::uint64_t k : keys) tree.erase(k);
  }
}
BENCHMARK(BM_VebInsertEraseSuccessor)->RangeMultiplier(16)->Range(1 << 10, 1 << 22);

}  // namespace
}  // namespace als

BENCHMARK_MAIN();
