// Parallel restart portfolio bench — the runtime layer's headline numbers.
//
// Part 1 ("Table 1 on all cores"): every Table-I circuit is placed by a
// whole-backend portfolio race — flat B*-tree vs sequence-pair vs slicing
// vs HB*-tree, each with a seed-split restart portfolio — fanned across all
// hardware threads.  The table reports the winning backend and its quality,
// reproducing the paper's per-circuit comparison at full-core speed.
//
// Part 2 (scaling): one fixed restart budget is run with 1 thread and with
// all hardware threads; the results must be bit-identical (the runtime
// determinism contract) and the wall-clock ratio is the measured speedup.
// On a multi-core machine the expected speedup at 8 restarts is >2x by a
// wide margin; on a single hardware thread it degrades gracefully to ~1x.
//
// Flags: --json <path> (machine-readable records), --smoke (short fixed
// budgets for CI).
#include <cstdio>
#include <iostream>

#include "io/corpus.h"
#include "netlist/generators.h"
#include "runtime/portfolio.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  const std::size_t hardware =
      ThreadPool::resolveThreadCount(0);

  std::puts("=== Portfolio: Table-I circuits, all backends, all cores ===\n");
  std::printf("hardware threads: %zu\n\n", hardware);
  {
    EngineOptions opt;
    opt.maxSweeps = io.smoke() ? 96 : 512;   // total budget, split over restarts
    opt.numRestarts = io.smoke() ? 4 : 16;
    opt.numThreads = 0;  // all hardware threads
    opt.seed = 1;

    Table table({"circuit", "# mods", "winner", "area/modarea", "HPWL (um)",
                 "restarts", "best restart", "time (s)"});
    PortfolioRunner runner;
    auto raceRow = [&](const Circuit& c, const std::string& label) {
      PortfolioRunner::RaceOutcome outcome = runner.race(c, allBackends(), opt);
      const EngineResult& r = outcome.result;
      table.addRow({label, std::to_string(c.moduleCount()),
                    std::string(backendName(outcome.backend)),
                    Table::fmt(static_cast<double>(r.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(r.hpwl) / 1000.0, 1),
                    std::to_string(r.restartsRun),
                    std::to_string(r.bestRestart), Table::fmt(r.seconds, 2)});
      io.add(std::string(backendName(outcome.backend)), label, r, hardware);
    };
    for (TableICircuit which : allTableICircuits()) {
      Circuit c = makeTableICircuit(which);
      if (io.smoke() && c.moduleCount() > 50) continue;  // CI smoke: small four
      raceRow(c, tableIName(which));
    }
    // The embedded benchmark corpus (real-file workloads) races alongside
    // the generated Table-I circuits.
    for (CorpusCircuit which : allCorpusCircuits()) {
      Circuit c = loadCorpusCircuit(which);
      if (io.smoke() && c.moduleCount() > 50) continue;
      raceRow(c, corpusName(which));
    }
    table.print(std::cout);
    std::printf(
        "\n(each row races %zu restarts x %zu backends over %zu threads;\n"
        "winner by the deterministic (cost, seed, backend) tie-break)\n\n",
        opt.numRestarts, allBackends().size(), hardware);
  }

  std::puts("=== Portfolio scaling: 1 thread vs all threads, equal budget ===\n");
  {
    Circuit c = makeSynthetic({.name = "scale40",
                               .moduleCount = 40,
                               .seed = 22,
                               .symmetricFraction = 0.5});
    EngineOptions opt;
    opt.maxSweeps = io.smoke() ? 256 : 2048;  // total, split across restarts
    opt.numRestarts = 8;
    opt.seed = 97;

    PortfolioRunner runner;
    opt.numThreads = 1;
    EngineResult serial = runner.run(c, EngineBackend::SeqPair, opt);
    opt.numThreads = 0;  // all hardware threads
    EngineResult parallel = runner.run(c, EngineBackend::SeqPair, opt);

    bool identical = serial.cost == parallel.cost &&
                     serial.area == parallel.area &&
                     serial.hpwl == parallel.hpwl &&
                     serial.sweeps == parallel.sweeps &&
                     serial.bestRestart == parallel.bestRestart &&
                     serial.placement.size() == parallel.placement.size();
    for (std::size_t m = 0; identical && m < serial.placement.size(); ++m) {
      identical = serial.placement[m] == parallel.placement[m];
    }

    std::printf("backend=seqpair  modules=%zu  total sweeps=%zu  restarts=%zu\n",
                c.moduleCount(), serial.sweeps, serial.restartsRun);
    std::printf("1 thread : %.2f s\n%zu threads: %.2f s\n", serial.seconds,
                hardware, parallel.seconds);
    std::printf("speedup  : %.2fx  (expect >2x at 8 restarts on >=4 cores)\n",
                serial.seconds / std::max(parallel.seconds, 1e-9));
    std::printf("bit-identical across thread counts: %s\n",
                identical ? "yes" : "NO — DETERMINISM BUG");

    io.add("seqpair", c.name(), serial, 1);
    io.add("seqpair", c.name(), parallel, hardware);
    if (!identical) return 1;
  }
  return 0;
}
