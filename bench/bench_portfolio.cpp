// Parallel restart portfolio bench — the runtime layer's headline numbers.
//
// Part 1 ("Table 1 on all cores"): every Table-I circuit is placed by a
// whole-backend portfolio race — flat B*-tree vs sequence-pair vs slicing
// vs HB*-tree, each with a seed-split restart portfolio — fanned across all
// hardware threads.  The table reports the winning backend and its quality,
// reproducing the paper's per-circuit comparison at full-core speed.
//
// Part 2 (scaling): one fixed restart budget is run with 1 thread and with
// all hardware threads; the results must be bit-identical (the runtime
// determinism contract) and the wall-clock ratio is the measured speedup.
// On a multi-core machine the expected speedup at 8 restarts is >2x by a
// wide margin; on a single hardware thread it degrades gracefully to ~1x.
//
// Part 3 (restarts vs tempering): the SAME restart plan — same seeds, same
// per-slice sweep budgets — is run twice per circuit, once as independent
// restarts and once as a coupled parallel-tempering ladder
// (runtime/tempering.h).  Equal budget, so any quality delta is purely the
// exchange coupling.  Records carry distinct "restarts-*" / "tempering-*"
// backend names so bench_diff tracks both configurations as separate
// coverage pairs.  A race leg on the small MCNC circuits additionally
// exercises cross-backend seeding (ladder-to-ladder placement adoption
// through the from_placement converters).
//
// Flags: --json <path> (machine-readable records), --smoke (short fixed
// budgets for CI).
#include <cstdio>
#include <iostream>

#include "io/corpus.h"
#include "netlist/generators.h"
#include "runtime/portfolio.h"
#include "runtime/tempering.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  const std::size_t hardware =
      ThreadPool::resolveThreadCount(0);

  std::puts("=== Portfolio: Table-I circuits, all backends, all cores ===\n");
  std::printf("hardware threads: %zu\n\n", hardware);
  {
    EngineOptions opt;
    opt.maxSweeps = io.smoke() ? 96 : 512;   // total budget, split over restarts
    opt.numRestarts = io.smoke() ? 4 : 16;
    opt.numThreads = 0;  // all hardware threads
    opt.seed = 1;

    Table table({"circuit", "# mods", "winner", "area/modarea", "HPWL (um)",
                 "restarts", "best restart", "time (s)"});
    PortfolioRunner runner;
    auto raceRow = [&](const Circuit& c, const std::string& label) {
      PortfolioRunner::RaceOutcome outcome = runner.race(c, allBackends(), opt);
      const EngineResult& r = outcome.result;
      table.addRow({label, std::to_string(c.moduleCount()),
                    std::string(backendName(outcome.backend)),
                    Table::fmt(static_cast<double>(r.area) /
                               static_cast<double>(c.totalModuleArea())),
                    Table::fmt(static_cast<double>(r.hpwl) / 1000.0, 1),
                    std::to_string(r.restartsRun),
                    std::to_string(r.bestRestart), Table::fmt(r.seconds, 2)});
      io.add(std::string(backendName(outcome.backend)), label, r, hardware);
    };
    for (TableICircuit which : allTableICircuits()) {
      Circuit c = makeTableICircuit(which);
      if (io.smoke() && c.moduleCount() > 50) continue;  // CI smoke: small four
      raceRow(c, tableIName(which));
    }
    // The embedded benchmark corpus (real-file workloads) races alongside
    // the generated Table-I circuits.
    for (CorpusCircuit which : allCorpusCircuits()) {
      Circuit c = loadCorpusCircuit(which);
      if (io.smoke() && c.moduleCount() > 50) continue;
      raceRow(c, corpusName(which));
    }
    table.print(std::cout);
    std::printf(
        "\n(each row races %zu restarts x %zu backends over %zu threads;\n"
        "winner by the deterministic (cost, seed, backend) tie-break)\n\n",
        opt.numRestarts, allBackends().size(), hardware);
  }

  std::puts("=== Portfolio scaling: 1 thread vs all threads, equal budget ===\n");
  {
    Circuit c = makeSynthetic({.name = "scale40",
                               .moduleCount = 40,
                               .seed = 22,
                               .symmetricFraction = 0.5});
    EngineOptions opt;
    opt.maxSweeps = io.smoke() ? 256 : 2048;  // total, split across restarts
    opt.numRestarts = 8;
    opt.seed = 97;

    PortfolioRunner runner;
    opt.numThreads = 1;
    EngineResult serial = runner.run(c, EngineBackend::SeqPair, opt);
    opt.numThreads = 0;  // all hardware threads
    EngineResult parallel = runner.run(c, EngineBackend::SeqPair, opt);

    bool identical = serial.cost == parallel.cost &&
                     serial.area == parallel.area &&
                     serial.hpwl == parallel.hpwl &&
                     serial.sweeps == parallel.sweeps &&
                     serial.bestRestart == parallel.bestRestart &&
                     serial.placement.size() == parallel.placement.size();
    for (std::size_t m = 0; identical && m < serial.placement.size(); ++m) {
      identical = serial.placement[m] == parallel.placement[m];
    }

    std::printf("backend=seqpair  modules=%zu  total sweeps=%zu  restarts=%zu\n",
                c.moduleCount(), serial.sweeps, serial.restartsRun);
    std::printf("1 thread : %.2f s\n%zu threads: %.2f s\n", serial.seconds,
                hardware, parallel.seconds);
    std::printf("speedup  : %.2fx  (expect >2x at 8 restarts on >=4 cores)\n",
                serial.seconds / std::max(parallel.seconds, 1e-9));
    std::printf("bit-identical across thread counts: %s\n",
                identical ? "yes" : "NO — DETERMINISM BUG");

    io.add("seqpair", c.name(), serial, 1);
    io.add("seqpair", c.name(), parallel, hardware);
    if (!identical) return 1;
  }

  std::puts("\n=== Equal budget: independent restarts vs tempering ===\n");
  {
    EngineOptions restarts;
    restarts.maxSweeps = io.smoke() ? 320 : 1024;  // total, split over replicas
    restarts.numRestarts = 4;
    restarts.numThreads = 0;
    restarts.seed = 41;

    // Measured on the corpus grid (MCNC x {seqpair, flat-bstar} + n100-n300):
    // a slightly-cold ladder (ratio < 1: the extra rungs quench) exchanging
    // every 4 sweeps beats the same budget spent on independent restarts on
    // every row.  Hot ladders (ratio > 1) lose at these short budgets — the
    // hot rungs' sweeps are spent above the mixing temperature.
    EngineOptions tempering = restarts;
    tempering.tempering = true;
    tempering.exchangeInterval = 4;
    tempering.ladderRatio = 0.9;

    Table table({"circuit", "backend", "restarts cost", "tempering cost",
                 "delta %", "exch", "restarts (s)", "tempering (s)"});
    PortfolioRunner portfolio;
    TemperingRunner temper;
    std::size_t wins = 0, rows = 0;
    auto compareRow = [&](const Circuit& c, const std::string& label,
                          EngineBackend backend) {
      EngineResult ind = portfolio.run(c, backend, restarts);
      TemperingOutcome pt = temper.run(c, backend, tempering);
      const double delta =
          (pt.result.cost - ind.cost) / std::max(ind.cost, 1e-12) * 100.0;
      ++rows;
      if (pt.result.cost <= ind.cost) ++wins;
      table.addRow({label, std::string(backendName(backend)),
                    Table::fmt(ind.cost, 4), Table::fmt(pt.result.cost, 4),
                    Table::fmt(delta, 2), std::to_string(pt.exchangesAccepted),
                    Table::fmt(ind.seconds, 2), Table::fmt(pt.result.seconds, 2)});
      io.add("restarts-" + std::string(backendName(backend)), label, ind,
             hardware, &restarts);
      io.add("tempering-" + std::string(backendName(backend)), label,
             pt.result, hardware, &tempering);
    };
    for (CorpusCircuit which : allCorpusCircuits()) {
      Circuit c = loadCorpusCircuit(which);
      compareRow(c, corpusName(which), EngineBackend::SeqPair);
      compareRow(c, corpusName(which), EngineBackend::FlatBStar);
    }
    for (CorpusCircuit which : largeCorpusCircuits()) {
      Circuit c = loadCorpusCircuit(which);
      compareRow(c, corpusName(which), EngineBackend::SeqPair);
    }
    table.print(std::cout);
    std::printf(
        "\n(same restart plan both sides: %zu replicas, equal sweep budgets;\n"
        "tempering couples them with exchangeInterval=%zu, ladderRatio=%.2f;\n"
        "tempering <= restarts on %zu/%zu rows)\n",
        restarts.numRestarts, tempering.exchangeInterval,
        tempering.ladderRatio, wins, rows);

    // Race leg: cross-backend seeding between the per-backend ladders.
    std::puts("\n--- race with cross-backend seeding ---\n");
    Table race({"circuit", "restarts winner", "cost", "tempering winner",
                "cost", "reseeds"});
    EngineOptions raceTempering = tempering;
    raceTempering.crossSeed = true;
    for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33}) {
      Circuit c = loadCorpusCircuit(which);
      PortfolioRunner::RaceOutcome ind =
          portfolio.race(c, allBackends(), restarts);
      TemperingOutcome pt = temper.race(c, allBackends(), raceTempering);
      race.addRow({corpusName(which), std::string(backendName(ind.backend)),
                   Table::fmt(ind.result.cost, 4),
                   std::string(backendName(pt.backend)),
                   Table::fmt(pt.result.cost, 4), std::to_string(pt.reseeds)});
      io.add("restarts-race", corpusName(which), ind.result, hardware,
             &restarts);
      io.add("tempering-race", corpusName(which), pt.result, hardware,
             &raceTempering);
    }
    race.print(std::cout);
  }
  return 0;
}
