// Experiment E10 — Fig. 10: electrical-only sizing versus layout-aware
// sizing of the fully-differential folded-cascode amplifier.
//
// Reproduced observables (the paper's absolute micrometre values come from
// its proprietary 0.35 um PDK and PCELL templates):
//   (a) the electrical-only sizing violates specifications once layout
//       parasitics are extracted, and its outline is strongly non-square;
//   (b) the layout-aware sizing meets every specification *including*
//       parasitics and is markedly more compact / closer to square;
//   (c) extraction inside the loop costs only a modest share of the total
//       sizing time (paper: 17%).
//
// Flags: --json <path>, --smoke (reduced iteration budget for CI).
#include <cstdio>
#include <iostream>

#include "layoutaware/sizing.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

namespace {

std::string pass(double value, double bound, bool atLeast = true) {
  bool ok = atLeast ? value >= bound : value <= bound;
  return ok ? "met" : "VIOLATED";
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E10 / Fig. 10: layout-aware sizing of a folded-cascode OTA ===\n");
  Technology tech = Technology::c035();
  OtaSpecs specs;
  const std::size_t iterations = io.smoke() ? 6000 : 60000;

  SizingOptions blind;
  blind.layoutAware = false;
  blind.iterations = iterations;
  blind.seed = 17;
  SizingResult a = runSizing(tech, specs, blind);

  SizingOptions aware;
  aware.layoutAware = true;
  aware.iterations = iterations;
  aware.seed = 17;
  SizingResult b = runSizing(tech, specs, aware);

  io.add({"sizing-electrical", "folded-cascode-ota", 0, 0, 1,
          a.violationExtracted, 0.0, a.layout.areaUm2() * 1e6, a.seconds});
  io.add({"sizing-layout-aware", "folded-cascode-ota", 0, 0, 1,
          b.violationExtracted, 0.0, b.layout.areaUm2() * 1e6, b.seconds});

  auto perfRows = [&](const char* flow, const SizingResult& r, Table& t) {
    const OtaPerformance& sized = r.perfSizing;
    const OtaPerformance& ext = r.perfExtracted;
    t.addRow({flow, "dc gain (dB)", Table::fmt(specs.minGainDb, 0) + " min",
              Table::fmt(sized.gainDb, 1), Table::fmt(ext.gainDb, 1),
              pass(ext.gainDb, specs.minGainDb)});
    t.addRow({flow, "GBW (MHz)", Table::fmt(specs.minGbwHz / 1e6, 0) + " min",
              Table::fmt(sized.gbwHz / 1e6, 1), Table::fmt(ext.gbwHz / 1e6, 1),
              pass(ext.gbwHz, specs.minGbwHz)});
    t.addRow({flow, "phase margin (deg)", Table::fmt(specs.minPmDeg, 0) + " min",
              Table::fmt(sized.pmDeg, 1), Table::fmt(ext.pmDeg, 1),
              pass(ext.pmDeg, specs.minPmDeg)});
    t.addRow({flow, "slew rate (V/us)", Table::fmt(specs.minSrVps / 1e6, 0) + " min",
              Table::fmt(sized.srVps / 1e6, 1), Table::fmt(ext.srVps / 1e6, 1),
              pass(ext.srVps, specs.minSrVps)});
    t.addRow({flow, "power (mW)", Table::fmt(specs.maxPowerW * 1e3, 1) + " max",
              Table::fmt(sized.powerW * 1e3, 2), Table::fmt(ext.powerW * 1e3, 2),
              pass(ext.powerW, specs.maxPowerW, false)});
  };

  Table perf({"flow", "specification", "target", "as sized", "with extraction",
              "post-layout"});
  perfRows("electrical-only", a, perf);
  perfRows("layout-aware", b, perf);
  perf.print(std::cout);

  Table geo({"flow", "width (um)", "height (um)", "area (um^2)", "aspect",
             "all specs post-layout", "extraction share"});
  auto geoRow = [&](const char* flow, const SizingResult& r) {
    geo.addRow({flow, Table::fmt(static_cast<double>(r.layout.width) / 1000.0, 1),
                Table::fmt(static_cast<double>(r.layout.height) / 1000.0, 1),
                Table::fmt(r.layout.areaUm2(), 0),
                Table::fmt(r.layout.aspectRatio(), 2),
                r.meetsSpecsExtracted ? "yes" : "NO",
                Table::fmtPercent(r.extractShare, 1)});
  };
  std::puts("");
  geoRow("electrical-only", a);
  geoRow("layout-aware", b);
  geo.print(std::cout);

  std::printf(
      "\nevaluations: electrical-only %zu, layout-aware %zu; layout-aware\n"
      "total %.3fs of which extraction %.3fs (%.1f%%; paper reports ~17%%).\n",
      a.evaluations, b.evaluations, b.seconds, b.extractSeconds,
      b.extractShare * 100.0);
  std::puts(
      "\nReading (cf. Fig. 10): the parasitic-blind sizing looks feasible to\n"
      "its own loop but fails specs once junction and wire capacitances are\n"
      "extracted; the layout-aware flow sizes against extracted parasitics\n"
      "and geometric restrictions, meeting all specs with a compact,\n"
      "near-square outline at a small in-loop extraction cost.");
  return 0;
}
