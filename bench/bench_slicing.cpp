// Experiment E13 — the slicing-versus-non-slicing density claim.
//
// Section II: ILAC employed the slicing layout model, but "today it is
// widely acknowledged that this is not a good choice for high-performance
// analog design since the slicing representations limit the set of reachable
// layout topologies, degrading the layout density especially when cells are
// very different in size — which is often the case in analog layout".
//
// This bench measures exactly that: pure-density annealing (no symmetry
// constraints) with the slicing placer versus the two non-slicing engines
// (sequence-pair, B*-tree) on the Table-I circuits, whose module footprints
// span more than an order of magnitude, plus a homogeneous control circuit
// where slicing should be competitive.
#include <cstdio>
#include <iostream>

#include "bstar/flat_placer.h"
#include "netlist/generators.h"
#include "seqpair/sa_placer.h"
#include "slicing/slicing_placer.h"
#include "util/table.h"

using namespace als;

namespace {

/// Density-only copy: same modules and nets, symmetry groups dropped and
/// orientations locked — analog devices keep their orientation for matching
/// (and gate direction), which is the hard-block regime where the slicing
/// limitation bites.
Circuit densityOnly(const Circuit& src) {
  Circuit c(src.name() + "-density");
  for (const Module& m : src.modules()) {
    c.addModule(m.name, m.w, m.h, /*rotatable=*/false);
  }
  for (const Net& n : src.nets()) c.addNet(n.name, n.pins, n.weight);
  return c;
}

/// Homogeneous control: all cells the same size (slicing's best case).
Circuit homogeneous(std::size_t n) {
  Circuit c("uniform-" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    c.addModule("u" + std::to_string(i), 8 * kUm, 8 * kUm, /*rotatable=*/false);
  }
  return c;
}

}  // namespace

int main() {
  std::puts("=== E13: slicing (ILAC-style) vs non-slicing density ===\n");
  const double budget = 2.5;

  Table table({"circuit", "size spread", "slicing SA", "seq-pair SA",
               "B*-tree SA", "slicing penalty"});
  struct Row {
    std::string name;
    Circuit circuit;
  };
  std::vector<Row> rows;
  for (TableICircuit which :
       {TableICircuit::ComparatorV2, TableICircuit::MillerV2,
        TableICircuit::FoldedCascode, TableICircuit::Buffer}) {
    rows.push_back({tableIName(which), densityOnly(makeTableICircuit(which))});
  }
  rows.push_back({"uniform-24 (control)", homogeneous(24)});

  for (Row& row : rows) {
    const Circuit& c = row.circuit;
    double modArea = static_cast<double>(c.totalModuleArea());
    Coord minA = c.module(0).w * c.module(0).h, maxA = minA;
    for (const Module& m : c.modules()) {
      minA = std::min(minA, m.w * m.h);
      maxA = std::max(maxA, m.w * m.h);
    }

    SlicingPlacerOptions sOpt;
    sOpt.timeLimitSec = budget;
    sOpt.maxSweeps = 0;  // pure wall-clock budget (paper-style experiment)
    sOpt.seed = 3;
    sOpt.wirelengthWeight = 0.0;  // pure density
    double slicing =
        static_cast<double>(placeSlicingSA(c, sOpt).area) / modArea;

    SeqPairPlacerOptions spOpt;
    spOpt.timeLimitSec = budget;
    spOpt.maxSweeps = 0;  // pure wall-clock budget (paper-style experiment)
    spOpt.seed = 3;
    spOpt.wirelengthWeight = 0.0;
    double seqpair =
        static_cast<double>(placeSeqPairSA(c, spOpt).area) / modArea;

    FlatBStarOptions bOpt;
    bOpt.timeLimitSec = budget;
    bOpt.maxSweeps = 0;  // pure wall-clock budget (paper-style experiment)
    bOpt.seed = 3;
    bOpt.wirelengthWeight = 0.0;
    bOpt.constraintWeight = 0.0;
    double bstar =
        static_cast<double>(placeFlatBStarSA(c, bOpt).area) / modArea;

    double bestNonSlicing = std::min(seqpair, bstar);
    table.addRow({row.name, Table::fmt(static_cast<double>(maxA) /
                                           static_cast<double>(minA), 0) + "x",
                  Table::fmtPercent(slicing), Table::fmtPercent(seqpair),
                  Table::fmtPercent(bstar),
                  Table::fmt((slicing - bestNonSlicing) * 100.0, 2) + "pp"});
  }
  table.print(std::cout);
  std::puts(
      "\nReading: values are bounding-box area / total module area (lower is\n"
      "denser).  The slicing model's penalty versus the best non-slicing\n"
      "engine is largest on circuits with strongly heterogeneous cells and\n"
      "smallest on the homogeneous control — the Section II claim.");
  return 0;
}
