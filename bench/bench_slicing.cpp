// Experiment E13 — the slicing-versus-non-slicing density claim.
//
// Section II: ILAC employed the slicing layout model, but "today it is
// widely acknowledged that this is not a good choice for high-performance
// analog design since the slicing representations limit the set of reachable
// layout topologies, degrading the layout density especially when cells are
// very different in size — which is often the case in analog layout".
//
// This bench measures exactly that: pure-density annealing (no symmetry
// constraints) with the slicing placer versus the two non-slicing engines
// (sequence-pair, B*-tree) on the Table-I circuits, whose module footprints
// span more than an order of magnitude, plus a homogeneous control circuit
// where slicing should be competitive.
//
// Migrated to the runtime portfolio API: every placer runs a seed-split
// restart portfolio through the PlacementEngine facade on all hardware
// threads, so the per-placer wall-clock budget buys one restart per core
// instead of one restart total.  (The flat B*-tree's constraint penalty is
// irrelevant here: density-only circuits carry no symmetry groups or
// hierarchy constraints, so the shared EngineOptions lose nothing.)
//
// Flags: --json <path>, --smoke (fixed sweep budgets for CI).
#include <cstdio>
#include <iostream>

#include "netlist/generators.h"
#include "runtime/portfolio.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

namespace {

/// Density-only copy: same modules and nets, symmetry groups dropped and
/// orientations locked — analog devices keep their orientation for matching
/// (and gate direction), which is the hard-block regime where the slicing
/// limitation bites.
Circuit densityOnly(const Circuit& src) {
  Circuit c(src.name() + "-density");
  for (const Module& m : src.modules()) {
    c.addModule(m.name, m.w, m.h, /*rotatable=*/false);
  }
  for (const Net& n : src.nets()) c.addNet(n.name, n.pins, n.weight);
  return c;
}

/// Homogeneous control: all cells the same size (slicing's best case).
Circuit homogeneous(std::size_t n) {
  Circuit c("uniform-" + std::to_string(n));
  for (std::size_t i = 0; i < n; ++i) {
    c.addModule("u" + std::to_string(i), 8 * kUm, 8 * kUm, /*rotatable=*/false);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E13: slicing (ILAC-style) vs non-slicing density ===\n");
  const double budget = 2.5;
  const std::size_t hardware =
      ThreadPool::resolveThreadCount(0);

  Table table({"circuit", "size spread", "slicing SA", "seq-pair SA",
               "B*-tree SA", "slicing penalty"});
  struct Row {
    std::string name;
    Circuit circuit;
  };
  std::vector<Row> rows;
  for (TableICircuit which :
       {TableICircuit::ComparatorV2, TableICircuit::MillerV2,
        TableICircuit::FoldedCascode, TableICircuit::Buffer}) {
    rows.push_back({tableIName(which), densityOnly(makeTableICircuit(which))});
  }
  rows.push_back({"uniform-24 (control)", homogeneous(24)});

  PortfolioRunner runner;
  for (Row& row : rows) {
    const Circuit& c = row.circuit;
    double modArea = static_cast<double>(c.totalModuleArea());
    Coord minA = c.module(0).w * c.module(0).h, maxA = minA;
    for (const Module& m : c.modules()) {
      minA = std::min(minA, m.w * m.h);
      maxA = std::max(maxA, m.w * m.h);
    }

    EngineOptions opt;
    io.applyBudget(opt, budget);  // per-restart wall clock (or smoke sweeps)
    opt.seed = 3;
    opt.wirelengthWeight = 0.0;  // pure density
    opt.numRestarts = io.smoke() ? 2 : hardware;  // one restart per core
    opt.numThreads = 0;

    auto usage = [&](EngineBackend backend) {
      EngineResult r = runner.run(c, backend, opt);
      io.add(std::string(backendName(backend)), c.name(), r, hardware);
      return static_cast<double>(r.area) / modArea;
    };
    double slicing = usage(EngineBackend::Slicing);
    double seqpair = usage(EngineBackend::SeqPair);
    double bstar = usage(EngineBackend::FlatBStar);

    double bestNonSlicing = std::min(seqpair, bstar);
    table.addRow({row.name, Table::fmt(static_cast<double>(maxA) /
                                           static_cast<double>(minA), 0) + "x",
                  Table::fmtPercent(slicing), Table::fmtPercent(seqpair),
                  Table::fmtPercent(bstar),
                  Table::fmt((slicing - bestNonSlicing) * 100.0, 2) + "pp"});
  }
  table.print(std::cout);
  std::printf(
      "\nReading: values are bounding-box area / total module area (lower is\n"
      "denser).  The slicing model's penalty versus the best non-slicing\n"
      "engine is largest on circuits with strongly heterogeneous cells and\n"
      "smallest on the homogeneous control — the Section II claim.\n"
      "(each engine ran a %zu-restart portfolio over %zu threads)\n",
      io.smoke() ? std::size_t{2} : hardware, hardware);
  return 0;
}
