// Experiment E8 — Table I of the paper: enhanced shape functions (ESF)
// versus regular shape functions (RSF) in the deterministic placer on the
// six circuits (module counts 13 / 10 / 22 / 46 / 65 / 110).
//
// Table I's published shape: ESF area usage is a few tenths of a percent
// better on the small circuits growing to ~7 percentage points on the big
// ones, at roughly an order of magnitude more runtime.  Absolute usage
// numbers differ from the paper (synthetic stand-in circuits, different
// pareto caps); the ordering, the growth of the ESF advantage with module
// count, and the runtime ratio are the reproduced observables.
//
// Flags: --json <path>, --smoke (skips the two largest circuits in CI).
#include <cstdio>
#include <iostream>
#include <utility>
#include <vector>

#include "io/corpus.h"
#include "netlist/generators.h"
#include "shapefn/deterministic.h"
#include "shapefn/enumerate.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E8 / Table I: enhanced vs regular shape functions ===\n");
  std::printf("context (Section IV): full enumeration is hopeless beyond basic\n"
              "module sets -- 8 modules already admit %llu B*-tree placements.\n\n",
              static_cast<unsigned long long>(bstarPlacementCount(8)));

  Table table({"Experiment", "# of mods", "ESF area usage", "ESF time (s)",
               "RSF area usage", "RSF time (s)", "Area improvement"});
  double sumImp = 0.0, sumRatio = 0.0;
  int rows = 0;
  // Generated Table-I circuits plus the embedded benchmark corpus (the
  // canonical hierarchy keeps corpus basic sets small enough to enumerate).
  std::vector<std::pair<std::string, Circuit>> experiments;
  for (TableICircuit which : allTableICircuits()) {
    experiments.emplace_back(tableIName(which), makeTableICircuit(which));
  }
  for (CorpusCircuit which : allCorpusCircuits()) {
    experiments.emplace_back(corpusName(which), loadCorpusCircuit(which));
  }
  for (const auto& [name, c] : experiments) {
    if (io.smoke() && c.moduleCount() > 50) continue;  // CI smoke: small ones

    DeterministicOptions esfOpt;
    esfOpt.kind = AdditionKind::Enhanced;
    DeterministicResult esf = placeDeterministic(c, esfOpt);

    DeterministicOptions rsfOpt;
    rsfOpt.kind = AdditionKind::Regular;
    DeterministicResult rsf = placeDeterministic(c, rsfOpt);

    double impPts = (rsf.areaUsage - esf.areaUsage) * 100.0;
    io.add({"esf", name, 0, 0, 1, esf.areaUsage, 0.0,
            static_cast<double>(esf.area), esf.seconds});
    io.add({"rsf", name, 0, 0, 1, rsf.areaUsage, 0.0,
            static_cast<double>(rsf.area), rsf.seconds});
    table.addRow({name, std::to_string(c.moduleCount()),
                  Table::fmtPercent(esf.areaUsage), Table::fmt(esf.seconds, 2),
                  Table::fmtPercent(rsf.areaUsage), Table::fmt(rsf.seconds, 2),
                  Table::fmt(impPts, 2) + "pp"});
    sumImp += impPts;
    sumRatio += esf.seconds / std::max(rsf.seconds, 1e-9);
    ++rows;
  }
  table.print(std::cout);
  std::printf(
      "\nAverages: ESF improves area usage by %.2f percentage points at %.1fx\n"
      "the RSF runtime (paper: 4.4%% smaller area at ~10x runtime).\n"
      "Area usage = bounding rectangle of the smallest shape / total module\n"
      "area, exactly as Table I defines it.\n",
      sumImp / rows, sumRatio / rows);
  return 0;
}
