// Ablation studies for the design choices DESIGN.md calls out.
//
//   A1 — pareto cap of the deterministic placer: area-usage vs cap for ESF
//        and RSF (the cap trades runtime for frontier resolution; Table I
//        uses the default).
//   A2 — sequence-pair move set: with vs without the repairing
//        "swap any + re-seat beta" move class (exploration power of the
//        property-(1)-preserving moves).
//   A3 — LCS packing structure inside the SA loop: moves evaluated per
//        second with the Fenwick packer vs the vEB packer vs the naive
//        reference (the constant factors behind the asymptotics of E4).
//
// Flags: --json <path>, --smoke (short budgets / reduced caps for CI).
#include <cstdio>
#include <iostream>
#include <vector>

#include "netlist/generators.h"
#include "seqpair/packer.h"
#include "seqpair/sa_placer.h"
#include "shapefn/deterministic.h"
#include "util/bench_json.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== Ablation A1: pareto cap of the deterministic placer ===\n");
  {
    Table table({"cap", "ESF usage", "ESF time (s)", "RSF usage", "RSF time (s)"});
    Circuit c = makeTableICircuit(TableICircuit::Biasynth);
    std::vector<std::size_t> caps = {4, 8, 16, 32, 64};
    if (io.smoke()) caps = {4, 8};
    for (std::size_t cap : caps) {
      DeterministicOptions esf{AdditionKind::Enhanced, cap, 4};
      DeterministicOptions rsf{AdditionKind::Regular, cap, 4};
      DeterministicResult re = placeDeterministic(c, esf);
      DeterministicResult rr = placeDeterministic(c, rsf);
      table.addRow({std::to_string(cap), Table::fmtPercent(re.areaUsage),
                    Table::fmt(re.seconds, 3), Table::fmtPercent(rr.areaUsage),
                    Table::fmt(rr.seconds, 3)});
      io.add({"esf-cap" + std::to_string(cap), c.name(), 0, 0, 1, re.areaUsage,
              0.0, static_cast<double>(re.area), re.seconds});
      io.add({"rsf-cap" + std::to_string(cap), c.name(), 0, 0, 1, rr.areaUsage,
              0.0, static_cast<double>(rr.area), rr.seconds});
    }
    table.print(std::cout);
    std::puts("(biasynth, 65 modules; larger caps = finer frontiers = better area)\n");
  }

  std::puts("=== Ablation A2: S-F move classes (with/without repair moves) ===\n");
  {
    // The repairing swap-any move relocates group cells relative to free
    // cells (then re-seats beta); without it, exploration is limited to
    // same-group counterpart swaps and free-cell swaps.
    Table table({"circuit", "repair moves", "area/modarea", "HPWL (um)"});
    for (std::uint64_t seed : {77ull, 78ull}) {
      Circuit c = makeSynthetic({.name = "abl" + std::to_string(seed),
                                 .moduleCount = 30,
                                 .seed = seed,
                                 .symmetricFraction = 0.8});
      for (bool repair : {true, false}) {
        SeqPairPlacerOptions opt;
        io.applyBudget(opt, 2.0);
        opt.seed = 5;
        opt.enableRepairMoves = repair;
        SeqPairPlacerResult r = placeSeqPairSA(c, opt);
        io.add({repair ? "seqpair-repair" : "seqpair-norepair", c.name(),
                r.sweeps, 1, 1, r.cost, static_cast<double>(r.hpwl),
                static_cast<double>(r.area), r.seconds});
        table.addRow({c.name(), repair ? "on" : "off",
                      Table::fmt(static_cast<double>(r.area) /
                                 static_cast<double>(c.totalModuleArea())),
                      Table::fmt(static_cast<double>(r.hpwl) / 1000.0, 1)});
      }
    }
    table.print(std::cout);
    std::puts("");
  }

  std::puts("=== Ablation A3: packer structure throughput inside SA ===\n");
  {
    Table table({"packer", "n=40 packs/s", "n=110 packs/s"});
    auto throughput = [&](PackStrategy strategy, std::size_t n) {
      Circuit c = makeSynthetic({.name = "thr", .moduleCount = n, .seed = 9});
      std::vector<Coord> w, h;
      for (const Module& m : c.modules()) {
        w.push_back(m.w);
        h.push_back(m.h);
      }
      Rng rng(1);
      SequencePair sp = SequencePair::random(n, rng);
      Stopwatch clock;
      std::size_t packs = 0;
      while (clock.seconds() < 0.3) {
        packSequencePair(sp, w, h, strategy);
        ++packs;
      }
      return static_cast<double>(packs) / clock.seconds();
    };
    for (auto [name, strategy] :
         std::initializer_list<std::pair<const char*, PackStrategy>>{
             {"naive O(n^2)", PackStrategy::Naive},
             {"Fenwick O(n log n)", PackStrategy::Fenwick},
             {"vEB O(n log log n)", PackStrategy::Veb}}) {
      table.addRow({name, Table::fmt(throughput(strategy, 40), 0),
                    Table::fmt(throughput(strategy, 110), 0)});
    }
    table.print(std::cout);
    std::puts(
        "\n(the vEB structure carries the best asymptotics — the Section II\n"
        "O(G n log log n) bound — but pays pointer-heavy constants; at\n"
        "device-level sizes the Fenwick packer is the practical choice,\n"
        "which is why it is the SA default.)");
  }
  return 0;
}
