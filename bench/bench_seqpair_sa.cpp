// Experiment E3 — Section II's core claim: restricting simulated annealing
// to symmetric-feasible topological codes beats the absolute-coordinate
// exploration style of the first-generation tools (ILAC / KOAN / PUPPY-A /
// LAYLA), which roams feasible AND unfeasible configurations and must anneal
// its overlaps and symmetry violations away.
//
// For each circuit both placers get the same wall-clock budget; the table
// reports final bounding-box area (relative to total module area), HPWL,
// residual violations, and the search-space reduction the S-F restriction
// buys (Lemma).
//
// Flags: --json <path> (machine-readable records), --smoke (fixed sweep
// budgets for CI).  The placers keep their direct backend calls: the bench
// reads backend-specific outputs (axis2x, overlap, residual violations)
// the shared engine facade does not carry.
#include <cstdio>
#include <iostream>

#include "netlist/generators.h"
#include "seqpair/absolute_placer.h"
#include "seqpair/sa_placer.h"
#include "seqpair/sym_placer.h"
#include "seqpair/symmetry.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E3: S-F sequence-pair SA vs absolute-coordinate SA ===\n");

  struct Bench {
    std::string name;
    Circuit circuit;
  };
  std::vector<Bench> benches;
  benches.push_back({"fig1 (7 cells)", makeFig1Example()});
  benches.push_back({"miller opamp (9)", makeMillerOpAmp()});
  benches.push_back({"synthetic-20", makeSynthetic({.name = "s20",
                                                    .moduleCount = 20,
                                                    .seed = 21,
                                                    .symmetricFraction = 0.6})});
  benches.push_back({"synthetic-40", makeSynthetic({.name = "s40",
                                                    .moduleCount = 40,
                                                    .seed = 22,
                                                    .symmetricFraction = 0.5})});

  const double budget = 3.0;  // seconds per placer per circuit

  Table table({"circuit", "placer", "area/modarea", "HPWL (um)", "overlap",
               "sym dev (um)", "feasible", "time (s)", "space reduction"});
  for (const Bench& b : benches) {
    const Circuit& c = b.circuit;
    double modArea = static_cast<double>(c.totalModuleArea());
    double reduction = searchSpaceReduction(c.moduleCount(), c.symmetryGroups());

    SeqPairPlacerOptions spOpt;
    io.applyBudget(spOpt, budget);
    spOpt.seed = 5;
    SeqPairPlacerResult sp = placeSeqPairSA(c, spOpt);
    io.add({"seqpair", b.name, sp.sweeps, 1, 1, sp.cost,
            static_cast<double>(sp.hpwl), static_cast<double>(sp.area),
            sp.seconds});
    bool spFeasible =
        sp.placement.isLegal() &&
        verifySymmetry(sp.placement, c.symmetryGroups(), sp.axis2x);
    table.addRow({b.name, "S-F seq-pair SA",
                  Table::fmt(static_cast<double>(sp.area) / modArea),
                  Table::fmt(static_cast<double>(sp.hpwl) / 1000.0, 1), "0",
                  "0.00", spFeasible ? "yes" : "NO", Table::fmt(sp.seconds, 2),
                  Table::fmtPercent(reduction)});

    AbsolutePlacerOptions absOpt;
    io.applyBudget(absOpt, budget);
    absOpt.seed = 5;
    AbsolutePlacerResult abs = placeAbsoluteSA(c, absOpt);
    io.add({"absolute", b.name, abs.sweeps, 1, 1, abs.cost,
            static_cast<double>(abs.hpwl), static_cast<double>(abs.area),
            abs.seconds});
    table.addRow({b.name, "absolute-coord SA",
                  Table::fmt(static_cast<double>(abs.area) / modArea),
                  Table::fmt(static_cast<double>(abs.hpwl) / 1000.0, 1),
                  Table::fmt(static_cast<double>(abs.overlapArea) / modArea, 3),
                  Table::fmt(static_cast<double>(abs.symViolation) / 1000.0, 2),
                  abs.feasible ? "yes" : "NO", Table::fmt(abs.seconds, 2), "0.00%"});
  }
  table.print(std::cout);
  std::puts(
      "\nReading: the topological placer explores only feasible symmetric\n"
      "placements (overlap and symmetry deviation are zero by construction);\n"
      "the absolute-coordinate baseline trades cheap moves for a vastly\n"
      "larger search space and typically retains residual violations within\n"
      "the same time budget.");
  return 0;
}
