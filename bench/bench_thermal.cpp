// Experiment E14 — the thermal motivation of placement symmetry
// (Section II): "the thermally-sensitive device couples should be placed
// symmetrically relative to the thermally-radiating devices".
//
// Setup: circuits with symmetry groups; one high-dissipation device acts as
// the radiator.  Compare the temperature mismatch seen by the matched pairs
// under (a) the symmetric-feasible sequence-pair placement — radiator
// self-symmetric, i.e. centered on the axis —, (b) the same engine with the
// radiator outside the group (off-axis), and (c) plain non-symmetric
// packings of random codes.
//
// A second experiment measures the thermal OBJECTIVE (not just the
// symmetry argument): corpus circuits carrying Power annotations are placed
// through the engine facade with the pair-mismatch term off and on, and the
// worst/mean pair mismatch of the results are compared per backend.
//
// Flags: --json <path>, --smoke (fixed sweep budgets for CI).
#include <cstdio>
#include <iostream>

#include "engine/placement_engine.h"
#include "io/corpus.h"
#include "netlist/generators.h"
#include "seqpair/packer.h"
#include "seqpair/sa_placer.h"
#include "thermal/thermal.h"
#include "util/bench_json.h"
#include "util/table.h"

using namespace als;

int main(int argc, char** argv) {
  BenchIo io(argc, argv);
  std::puts("=== E14: thermal mismatch vs placement symmetry ===\n");

  Table table({"circuit", "placement", "radiator", "worst pair dT (K)",
               "mean pair dT (K)"});

  auto addRows = [&](const std::string& name, const Circuit& c,
                     std::size_t axisRadiator, std::size_t offAxisRadiator) {
    auto evaluate = [&](const Placement& p, std::size_t radiator) {
      std::vector<double> power(c.moduleCount(), 0.0);
      power[radiator] = 0.25;  // 250 mW output device
      ThermalField field(sourcesFromPlacement(p, power));
      double worst = 0.0, sum = 0.0;
      std::size_t pairs = 0;
      for (const SymmetryGroup& g : c.symmetryGroups()) {
        for (double m : pairTemperatureMismatch(p, g, field)) {
          worst = std::max(worst, m);
          sum += m;
          ++pairs;
        }
      }
      return std::pair(worst, pairs ? sum / static_cast<double>(pairs) : 0.0);
    };

    SeqPairPlacerOptions opt;
    io.applyBudget(opt, 1.5);
    opt.seed = 7;
    SeqPairPlacerResult sym = placeSeqPairSA(c, opt);
    io.add({"seqpair", name, sym.sweeps, 1, 1, sym.cost,
            static_cast<double>(sym.hpwl), static_cast<double>(sym.area),
            sym.seconds});

    auto [wOn, mOn] = evaluate(sym.placement, axisRadiator);
    table.addRow({name, "symmetric (S-F SA)", "on axis (self-symmetric)",
                  Table::fmt(wOn, 4), Table::fmt(mOn, 4)});
    auto [wOff, mOff] = evaluate(sym.placement, offAxisRadiator);
    table.addRow({name, "symmetric (S-F SA)", "off axis",
                  Table::fmt(wOff, 4), Table::fmt(mOff, 4)});

    // Plain packings of random codes: legal but not symmetric.
    Rng rng(23);
    std::vector<Coord> w, h;
    for (const Module& m : c.modules()) {
      w.push_back(m.w);
      h.push_back(m.h);
    }
    double worstSum = 0.0, meanSum = 0.0;
    const int trials = 25;
    for (int t = 0; t < trials; ++t) {
      SequencePair sp = SequencePair::random(c.moduleCount(), rng);
      Placement p = packSequencePair(sp, w, h);
      auto [wr, mr] = evaluate(p, axisRadiator);
      worstSum += wr;
      meanSum += mr;
    }
    table.addRow({name, "random packing (avg of 25)", "same device",
                  Table::fmt(worstSum / trials, 4), Table::fmt(meanSum / trials, 4)});
  };

  // Fig. 1: radiator A (self-symmetric, id 2) vs E (free cell, id 0).
  addRows("fig1", makeFig1Example(), 2, 0);
  // Miller op amp: radiator P6 (self-symmetric in CM2, id 3) vs N8 (id 7).
  addRows("miller opamp", makeMillerOpAmp(), 3, 7);

  table.print(std::cout);
  std::puts(
      "\nReading: with the radiator centered on the symmetry axis, mirror\n"
      "pairs are equidistant from it and the induced mismatch is exactly\n"
      "zero; off-axis radiators and non-symmetric placements leave a finite\n"
      "temperature difference across matched couples — the thermal argument\n"
      "Section II gives for symmetric analog placement.\n");

  std::puts("=== thermal objective through the engine facade ===\n");
  Table objTable({"circuit", "backend", "thermal wt", "worst pair dT (K)",
                  "mean pair dT (K)", "area/modarea"});
  // Corpus circuits whose Power annotations make the term live.
  for (CorpusCircuit which : {CorpusCircuit::Apte, CorpusCircuit::Ami33}) {
    Circuit c = loadCorpusCircuit(which);
    std::vector<double> power;
    for (const Module& m : c.modules()) power.push_back(m.powerW);
    for (EngineBackend backend : allBackends()) {
      const std::unique_ptr<PlacementEngine> engine = makeEngine(backend);
      for (double wt : {0.0, 4.0}) {
        EngineOptions opt;
        io.applyBudget(opt, 1.0, 48);
        opt.seed = 7;
        opt.thermalWeight = wt;
        EngineResult r = engine->place(c, opt);
        ThermalField field(sourcesFromPlacement(r.placement, power));
        double worst = 0.0, sum = 0.0;
        std::size_t pairs = 0;
        for (const SymmetryGroup& g : c.symmetryGroups()) {
          for (double m : pairTemperatureMismatch(r.placement, g, field)) {
            worst = std::max(worst, m);
            sum += m;
            ++pairs;
          }
        }
        objTable.addRow(
            {corpusName(which), std::string(backendName(backend)),
             Table::fmt(wt, 1), Table::fmt(worst, 4),
             Table::fmt(pairs ? sum / static_cast<double>(pairs) : 0.0, 4),
             Table::fmt(static_cast<double>(r.area) /
                        static_cast<double>(c.totalModuleArea()))});
        io.add(std::string(backendName(backend)) +
                   (wt == 0.0 ? "+thermal-off" : "+thermal-on"),
               corpusName(which), r, 1, &opt);
      }
    }
  }
  objTable.print(std::cout);
  std::puts(
      "\nReading: the pair-mismatch term steers each backend toward layouts\n"
      "where matched couples sit at equal quantized temperature; the flat\n"
      "penalty backend (no exact-symmetry decode) shows the largest drop.");
  return 0;
}
